//! Figure 17 — the combined schemes on 2-stage vs 5-stage router pipelines,
//! workloads 1-6.
//!
//! Paper shape to reproduce: gains persist with 2-stage routers but shrink
//! by 25-40% (shallower pipelines leave less network latency to save, and
//! pipeline bypassing has nothing left to skip).
//!
//! Two parallel phases: alone-IPC denominators (one hardware point per
//! pipeline depth), then the 6 × 2 × 2 cell grid.

use noclat::{RouterPipeline, SystemConfig};
use noclat_bench::{banner, run_with_ws, w};
use noclat_engine::{self as sweep, AloneMap, Job, Json, Obj, SweepArgs};
use noclat_sim::stats::geomean;

const PIPES: [RouterPipeline; 2] = [RouterPipeline::FiveStage, RouterPipeline::TwoStage];

fn hw_with_pipe(seed: u64, pipe: RouterPipeline) -> SystemConfig {
    let mut hw = SystemConfig::baseline_32();
    hw.seed = seed;
    hw.noc.pipeline = pipe;
    hw
}

fn main() {
    let args = SweepArgs::parse(&format!("fig17 {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 17: 5-stage vs 2-stage router pipelines (workloads 1-6, Scheme-1+2)",
        "Normalized WS per pipeline depth.",
    );
    let lengths = args.lengths;

    let mut requests = Vec::new();
    for &pipe in &PIPES {
        for i in 1..=6 {
            requests.push((hw_with_pipe(args.seed, pipe), w(i).apps()));
        }
    }
    let alone = AloneMap::compute(&args, &requests);

    let mut jobs = Vec::new();
    for i in 1..=6 {
        let apps = w(i).apps();
        for &pipe in &PIPES {
            let hw = hw_with_pipe(args.seed, pipe);
            let table = alone.table(&hw, &apps);
            for both in [false, true] {
                let mut cfg = if both {
                    hw.clone().with_both_schemes()
                } else {
                    hw.clone()
                };
                args.apply_policy(&mut cfg);
                let apps = apps.clone();
                let table = table.clone();
                let label = if both { "both" } else { "base" };
                jobs.push(Job::new(
                    format!("fig17/{}/{pipe:?}/{label}", w(i).name()),
                    move || run_with_ws(&cfg, &apps, &table, lengths).1,
                ));
            }
        }
    }
    let ws = sweep::run_grid(&args, jobs);

    println!("{:>12} {:>9} {:>9}", "workload", "5-stage", "2-stage");
    let mut cols: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut rows_json = Vec::new();
    for i in 1..=6 {
        let mut row = Vec::new();
        for (k, col) in cols.iter_mut().enumerate() {
            let at = (i - 1) * 4 + k * 2;
            let v = ws[at + 1] / ws[at];
            row.push(v);
            col.push(v);
        }
        println!("{:>12} {:>9.3} {:>9.3}", w(i).name(), row[0], row[1]);
        rows_json.push(
            Obj::new()
                .field("workload", w(i).name())
                .field("five_stage", row[0])
                .field("two_stage", row[1])
                .build(),
        );
    }
    let g5 = geomean(&cols[0]).unwrap_or(1.0);
    let g2 = geomean(&cols[1]).unwrap_or(1.0);
    println!("{:>12} {:>9.3} {:>9.3}", "geomean", g5, g2);
    if g5 > 1.0 {
        println!(
            "\n2-stage gains are {:.0}% of the 5-stage gains (paper: 60-75%)",
            (g2 - 1.0) / (g5 - 1.0) * 100.0
        );
    }

    let json = sweep::report(
        "fig17",
        &args,
        Obj::new()
            .field("workloads", Json::Arr(rows_json))
            .field(
                "geomeans",
                Obj::new()
                    .field("five_stage", g5)
                    .field("two_stage", g2)
                    .build(),
            )
            .build(),
    );
    sweep::finish(&args, &json);
}
