//! Figure 16a — sensitivity of the combined schemes to the Scheme-1
//! lateness threshold: {1.0, 1.2, 1.4} x Delay_avg, workloads 1-6.
//!
//! Paper shape to reproduce: 1.2x is the sweet spot; 1.4x marks too few
//! messages, 1.0x marks too many (prioritizing everything hurts the rest).

use noclat::SystemConfig;
use noclat_bench::{banner, lengths_from_args, run_with_ws, w, AloneTable};
use noclat_sim::stats::geomean;

fn main() {
    banner(
        "Figure 16a: Threshold sensitivity (workloads 1-6, Scheme-1+2)",
        "Normalized WS for thresholds 1.0x, 1.2x and 1.4x Delay_avg.",
    );
    let lengths = lengths_from_args();
    let mut alone = AloneTable::new();
    println!(
        "{:>12} {:>8} {:>8} {:>8}",
        "workload", "1.0x", "1.2x", "1.4x"
    );
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for i in 1..=6 {
        let apps = w(i).apps();
        let hw = SystemConfig::baseline_32();
        let table = alone.table(&hw, &apps, lengths);
        let (_, base) = run_with_ws(&hw, &apps, &table, lengths);
        let mut row = Vec::new();
        for (k, factor) in [1.0, 1.2, 1.4].into_iter().enumerate() {
            let mut cfg = hw.clone().with_both_schemes();
            cfg.scheme1.threshold_factor = factor;
            let (_, ws) = run_with_ws(&cfg, &apps, &table, lengths);
            row.push(ws / base);
            cols[k].push(ws / base);
        }
        println!(
            "{:>12} {:>8.3} {:>8.3} {:>8.3}",
            w(i).name(),
            row[0],
            row[1],
            row[2]
        );
    }
    println!(
        "{:>12} {:>8.3} {:>8.3} {:>8.3}",
        "geomean",
        geomean(&cols[0]).unwrap_or(1.0),
        geomean(&cols[1]).unwrap_or(1.0),
        geomean(&cols[2]).unwrap_or(1.0)
    );
}
