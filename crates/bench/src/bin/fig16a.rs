//! Figure 16a — sensitivity of the combined schemes to the Scheme-1
//! lateness threshold: {1.0, 1.2, 1.4} x Delay_avg, workloads 1-6.
//!
//! Paper shape to reproduce: 1.2x is the sweet spot; 1.4x marks too few
//! messages, 1.0x marks too many (prioritizing everything hurts the rest).
//!
//! Two parallel phases: alone-IPC denominators, then the 6 × 4 cell grid
//! (baseline plus three thresholds per workload).

use noclat::SystemConfig;
use noclat_bench::{banner, run_with_ws, w};
use noclat_engine::{self as sweep, AloneMap, Job, Json, Obj, SweepArgs};
use noclat_sim::stats::geomean;

const FACTORS: [f64; 3] = [1.0, 1.2, 1.4];

fn main() {
    let args = SweepArgs::parse(&format!("fig16a {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 16a: Threshold sensitivity (workloads 1-6, Scheme-1+2)",
        "Normalized WS for thresholds 1.0x, 1.2x and 1.4x Delay_avg.",
    );
    let lengths = args.lengths;
    let mut hw = SystemConfig::baseline_32();
    hw.seed = args.seed;

    let requests: Vec<_> = (1..=6).map(|i| (hw.clone(), w(i).apps())).collect();
    let alone = AloneMap::compute(&args, &requests);

    let mut jobs = Vec::new();
    for i in 1..=6 {
        let apps = w(i).apps();
        let table = alone.table(&hw, &apps);
        for factor in [0.0].iter().chain(FACTORS.iter()) {
            // factor 0.0 marks the unprioritized baseline cell
            let mut cfg = if *factor == 0.0 {
                hw.clone()
            } else {
                let mut c = hw.clone().with_both_schemes();
                c.scheme1.threshold_factor = *factor;
                c
            };
            args.apply_policy(&mut cfg);
            let apps = apps.clone();
            let table = table.clone();
            jobs.push(Job::new(
                format!("fig16a/{}/t{factor}", w(i).name()),
                move || run_with_ws(&cfg, &apps, &table, lengths).1,
            ));
        }
    }
    let ws = sweep::run_grid(&args, jobs);

    println!(
        "{:>12} {:>8} {:>8} {:>8}",
        "workload", "1.0x", "1.2x", "1.4x"
    );
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut rows_json = Vec::new();
    for i in 1..=6 {
        let base = ws[(i - 1) * 4];
        let row: Vec<f64> = (0..3).map(|k| ws[(i - 1) * 4 + 1 + k] / base).collect();
        for (k, v) in row.iter().enumerate() {
            cols[k].push(*v);
        }
        println!(
            "{:>12} {:>8.3} {:>8.3} {:>8.3}",
            w(i).name(),
            row[0],
            row[1],
            row[2]
        );
        rows_json.push(
            Obj::new()
                .field("workload", w(i).name())
                .field("base_ws", base)
                .field("t1.0", row[0])
                .field("t1.2", row[1])
                .field("t1.4", row[2])
                .build(),
        );
    }
    let geo: Vec<f64> = cols.iter().map(|c| geomean(c).unwrap_or(1.0)).collect();
    println!(
        "{:>12} {:>8.3} {:>8.3} {:>8.3}",
        "geomean", geo[0], geo[1], geo[2]
    );

    let json = sweep::report(
        "fig16a",
        &args,
        Obj::new()
            .field(
                "factors",
                Json::Arr(FACTORS.iter().map(|&f| Json::Num(f)).collect()),
            )
            .field("workloads", Json::Arr(rows_json))
            .field(
                "geomeans",
                Obj::new()
                    .field("t1.0", geo[0])
                    .field("t1.2", geo[1])
                    .field("t1.4", geo[2])
                    .build(),
            )
            .build(),
    );
    sweep::finish(&args, &json);
}
