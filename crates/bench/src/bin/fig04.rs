//! Figure 4 — average round-trip delays of off-chip accesses issued by the
//! core running milc in workload-2, broken into the five path components of
//! Figure 2, bucketed by total delay range.
//!
//! Paper shape to reproduce: the memory component (queueing + DRAM access)
//! grows steeply with the delay range, and the network components also grow,
//! so late accesses are late because of both memory queueing and network
//! contention.

use noclat::{run_mix, SystemConfig};
use noclat_bench::{banner, core_of, lengths_from_args};
use noclat_workloads::{workload, SpecApp};

fn main() {
    banner(
        "Figure 4: Per-range breakdown of off-chip access delay (milc, workload-2)",
        "Columns: delay range start | count | L1->L2 | L2->Mem | Mem | Mem->L2 | L2->L1",
    );
    let lengths = lengths_from_args();
    let r = run_mix(&SystemConfig::baseline_32(), &workload(2).apps(), lengths);
    let core = core_of(&r, SpecApp::Milc).expect("workload-2 contains milc");
    println!("milc runs on core {core}\n");
    println!(
        "{:>7} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "range", "count", "L1->L2", "L2->Mem", "Mem", "Mem->L2", "L2->L1", "total"
    );
    for (range, row) in r.system.tracker().app(core).breakdown() {
        let a = row.averages();
        println!(
            "{:>7} {:>6} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
            range,
            row.count,
            a[0],
            a[1],
            a[2],
            a[3],
            a[4],
            a.iter().sum::<f64>()
        );
    }
    let app = r.system.tracker().app(core);
    println!(
        "\nmilc off-chip accesses: {}  mean round-trip: {:.0} cycles (paper: ~350)",
        app.total.count(),
        app.total.mean()
    );
}
