//! Figure 4 — average round-trip delays of off-chip accesses issued by the
//! core running milc in workload-2, broken into the five path components of
//! Figure 2, bucketed by total delay range.
//!
//! Paper shape to reproduce: the memory component (queueing + DRAM access)
//! grows steeply with the delay range, and the network components also grow,
//! so late accesses are late because of both memory queueing and network
//! contention.
//!
//! The measurement is sharded across independently seeded replicates on the
//! worker pool; breakdown rows merge exactly, so reports are identical for
//! every `--jobs` value.

use noclat::{run_mix, AppLatency, SystemConfig};
use noclat_bench::{banner, core_of};
use noclat_engine::{self as sweep, Json, Obj, SweepArgs, DEFAULT_SHARDS};
use noclat_workloads::{workload, SpecApp};

fn main() {
    let args = SweepArgs::parse(&format!("fig04 {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 4: Per-range breakdown of off-chip access delay (milc, workload-2)",
        "Columns: delay range start | count | L1->L2 | L2->Mem | Mem | Mem->L2 | L2->L1",
    );
    let lengths = args.lengths;
    let policy = args.policy.clone();
    let kernel = args.kernel;
    let shards = sweep::run_shards(&args, "fig04/w2", DEFAULT_SHARDS, move |_, seed| {
        let mut cfg = SystemConfig::baseline_32();
        cfg.seed = seed;
        policy.apply(&mut cfg);
        cfg.kernel = kernel;
        let r = run_mix(&cfg, &workload(2).apps(), lengths);
        let core = core_of(&r, SpecApp::Milc).expect("workload-2 contains milc");
        (core, r.system.tracker().app(core).clone())
    });
    let core = shards[0].0;
    let mut app = AppLatency::empty();
    for (_, shard) in &shards {
        app.merge(shard);
    }
    println!("milc runs on core {core}\n");
    println!(
        "{:>7} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "range", "count", "L1->L2", "L2->Mem", "Mem", "Mem->L2", "L2->L1", "total"
    );
    let mut rows_json = Vec::new();
    for (range, row) in app.breakdown() {
        let a = row.averages();
        println!(
            "{:>7} {:>6} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
            range,
            row.count,
            a[0],
            a[1],
            a[2],
            a[3],
            a[4],
            a.iter().sum::<f64>()
        );
        rows_json.push(
            Obj::new()
                .field("range", range)
                .field("count", row.count)
                .field("l1_to_l2", a[0])
                .field("l2_to_mem", a[1])
                .field("mem", a[2])
                .field("mem_to_l2", a[3])
                .field("l2_to_l1", a[4])
                .build(),
        );
    }
    println!(
        "\nmilc off-chip accesses: {}  mean round-trip: {:.0} cycles (paper: ~350)",
        app.total.count(),
        app.total.mean()
    );
    let json = sweep::report(
        "fig04",
        &args,
        Obj::new()
            .field("workload", 2u64)
            .field("app", "milc")
            .field("core", core)
            .field("shards", DEFAULT_SHARDS)
            .field("offchip", app.total.count())
            .field("mean_round_trip", app.total.mean())
            .field("breakdown", Json::Arr(rows_json))
            .build(),
    );
    sweep::finish(&args, &json);
}
