//! Table 1 — baseline configuration.
//!
//! Prints the simulated system's configuration in the layout of the paper's
//! Table 1, so any divergence from the published parameters is visible at a
//! glance (calibrated DRAM timings are flagged). `--json PATH` writes the
//! same rows as a structured report.

use noclat::SystemConfig;
use noclat_bench::banner;
use noclat_engine::{self as sweep, Json, Obj, SweepArgs};

fn main() {
    let args = SweepArgs::parse(&format!("table1 {}", sweep::SWEEP_USAGE));
    banner(
        "Table 1: Baseline configuration",
        "Paper values in parentheses where our model deviates (see DESIGN.md).",
    );
    let mut c = SystemConfig::baseline_32();
    args.apply_policy(&mut c);
    let rows: Vec<(&str, String)> = vec![
        (
            "Processors",
            format!(
                "{} out-of-order cores, window {}, LSQ {}",
                c.num_cores(),
                c.cpu.window_size,
                c.cpu.lsq_size
            ),
        ),
        (
            "NoC architecture",
            format!("{} x {} mesh", c.topology.height, c.topology.width),
        ),
        (
            "Private L1 D&I caches",
            format!(
                "direct mapped, {} KB, {} B lines, {}-cycle access",
                c.l1.size_bytes / 1024,
                c.l1.line_bytes,
                c.l1.latency
            ),
        ),
        (
            "L2 cache banks",
            format!("{} (one per tile, S-NUCA interleaved)", c.num_cores()),
        ),
        (
            "L2 cache",
            format!(
                "{} B lines, {}-cycle access, {}-way",
                c.l2.line_bytes, c.l2.latency, c.l2.associativity
            ),
        ),
        (
            "L2 bank size",
            format!("{} KB", c.l2.bank_size_bytes / 1024),
        ),
        (
            "Banks per memory controller",
            format!("{}", c.mem.banks_per_controller),
        ),
        (
            "Memory configuration",
            format!(
                "bus multiplier {}, bank busy {} DRAM cyc (paper: 22 core cyc), \
                 rank delay {}, read-write delay {}, CTL latency {} cyc, refresh {} DRAM cyc",
                c.mem.bus_multiplier,
                c.mem.bank_busy,
                c.mem.rank_delay,
                c.mem.read_write_delay,
                c.mem.ctl_latency,
                c.mem.refresh_period
            ),
        ),
        (
            "Coherence protocol",
            "private-workload request/response (paper: MOESI_CMP_Directory; \
             multiprogrammed workloads share nothing)"
                .to_string(),
        ),
        (
            "NoC parameters",
            format!(
                "{:?} router, flit {} bits, buffer {} flits, {} VCs/port, X-Y routing",
                c.noc.pipeline, c.noc.flit_bits, c.noc.buffer_depth, c.noc.vcs_per_port
            ),
        ),
        (
            "Memory controllers",
            format!("{} at mesh corners", c.mem.num_controllers),
        ),
        (
            "Scheme-1 defaults",
            format!(
                "threshold {} x Delay_avg, update period {} cycles",
                c.scheme1.threshold_factor, c.scheme1.update_period
            ),
        ),
        (
            "Scheme-2 defaults",
            format!(
                "history window T = {} cycles, idle threshold {}",
                c.scheme2.history_window, c.scheme2.idle_threshold
            ),
        ),
        (
            "Prioritization policies",
            format!(
                "request {}, response {}, arbitration {:?}",
                c.policy.request_name(c.scheme2.enabled),
                c.policy.response_name(c.scheme1.enabled),
                c.noc.starvation
            ),
        ),
    ];
    let mut rows_json = Vec::new();
    for (k, v) in &rows {
        println!("{k:34} | {v}");
        rows_json.push(
            Obj::new()
                .field("parameter", *k)
                .field("value", v.clone())
                .build(),
        );
    }
    let json = sweep::report(
        "table1",
        &args,
        Obj::new().field("rows", Json::Arr(rows_json)).build(),
    );
    sweep::finish(&args, &json);
}
