//! Figure 13 — per-bank idleness of one memory controller with and without
//! Scheme-2.
//!
//! Paper shape to reproduce: Scheme-2 reduces idleness in most banks
//! (requests reach idle banks faster, so they spend less time empty).
//!
//! The paper plots workload-1; in our calibration the mixed workloads leave
//! banks mostly idle, so the memory-intensive workload-8 — where bank
//! pressure actually exists — is reported alongside it.

use noclat::{run_mix, MixResult, RunLengths, SystemConfig};
use noclat_bench::{banner, lengths_from_args};
use noclat_workloads::workload;

fn report(widx: usize, base: &MixResult, s2: &MixResult) {
    println!("\n--- workload-{widx} ---");
    let ib = base.system.idleness(0).per_bank_idleness();
    let is2 = s2.system.idleness(0).per_bank_idleness();
    println!(
        "{:>5} {:>9} {:>9} {:>8}",
        "bank", "default", "scheme2", "delta"
    );
    let mut reduced = 0;
    for b in 0..ib.len() {
        let d = is2[b] - ib[b];
        if d < 0.0 {
            reduced += 1;
        }
        println!("{b:>5} {:>9.3} {:>9.3} {d:>+8.3}", ib[b], is2[b]);
    }
    println!(
        "overall idleness: {:.4} -> {:.4}  (reduced in {reduced}/{} banks)",
        base.system.idleness(0).overall(),
        s2.system.idleness(0).overall(),
        ib.len()
    );
}

fn run_for(widx: usize, lengths: RunLengths) {
    let apps = workload(widx).apps();
    let base = run_mix(&SystemConfig::baseline_32(), &apps, lengths);
    let s2 = run_mix(&SystemConfig::baseline_32().with_scheme2(), &apps, lengths);
    report(widx, &base, &s2);
}

fn main() {
    banner(
        "Figure 13: Bank idleness of controller 0, default vs Scheme-2",
        "A bank is idle when its queue is empty at a sampling instant.",
    );
    let lengths = lengths_from_args();
    run_for(1, lengths); // the paper's choice
    run_for(8, lengths); // where bank pressure is visible in our calibration
}
