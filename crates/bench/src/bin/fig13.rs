//! Figure 13 — per-bank idleness of one memory controller with and without
//! Scheme-2.
//!
//! Paper shape to reproduce: Scheme-2 reduces idleness in most banks
//! (requests reach idle banks faster, so they spend less time empty).
//!
//! The paper plots workload-1; in our calibration the mixed workloads leave
//! banks mostly idle, so the memory-intensive workload-8 — where bank
//! pressure actually exists — is reported alongside it.
//!
//! All four (workload × scheme) cells run as one pool grid.

use noclat::{run_mix, SystemConfig};
use noclat_bench::banner;
use noclat_engine::{self as sweep, Job, Json, Obj, SweepArgs};
use noclat_workloads::workload;

const WORKLOADS: [usize; 2] = [1, 8];

fn main() {
    let args = SweepArgs::parse(&format!("fig13 {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 13: Bank idleness of controller 0, default vs Scheme-2",
        "A bank is idle when its queue is empty at a sampling instant.",
    );
    let lengths = args.lengths;
    let mut jobs = Vec::new();
    for &widx in &WORKLOADS {
        for scheme2 in [false, true] {
            let seed = args.seed;
            let policy = args.policy.clone();
            let kernel = args.kernel;
            let label = if scheme2 { "scheme2" } else { "default" };
            jobs.push(Job::new(format!("fig13/w{widx}/{label}"), move || {
                let mut cfg = SystemConfig::baseline_32();
                if scheme2 {
                    cfg = cfg.with_scheme2();
                }
                cfg.seed = seed;
                policy.apply(&mut cfg);
                cfg.kernel = kernel;
                let r = run_mix(&cfg, &workload(widx).apps(), lengths);
                (
                    r.system.idleness(0).per_bank_idleness(),
                    r.system.idleness(0).overall(),
                )
            }));
        }
    }
    let results = sweep::run_grid(&args, jobs);

    let mut rows_json = Vec::new();
    for (k, &widx) in WORKLOADS.iter().enumerate() {
        let (ib, overall_b) = &results[k * 2];
        let (is2, overall_s) = &results[k * 2 + 1];
        println!("\n--- workload-{widx} ---");
        println!(
            "{:>5} {:>9} {:>9} {:>8}",
            "bank", "default", "scheme2", "delta"
        );
        let mut reduced = 0;
        for b in 0..ib.len() {
            let d = is2[b] - ib[b];
            if d < 0.0 {
                reduced += 1;
            }
            println!("{b:>5} {:>9.3} {:>9.3} {d:>+8.3}", ib[b], is2[b]);
        }
        println!(
            "overall idleness: {overall_b:.4} -> {overall_s:.4}  (reduced in {reduced}/{} banks)",
            ib.len()
        );
        rows_json.push(
            Obj::new()
                .field("workload", widx)
                .field(
                    "default",
                    Json::Arr(ib.iter().map(|&v| Json::Num(v)).collect()),
                )
                .field(
                    "scheme2",
                    Json::Arr(is2.iter().map(|&v| Json::Num(v)).collect()),
                )
                .field("overall_default", *overall_b)
                .field("overall_scheme2", *overall_s)
                .field("banks_reduced", reduced as u64)
                .build(),
        );
    }

    let json = sweep::report(
        "fig13",
        &args,
        Obj::new()
            .field("controller", 0u64)
            .field("workloads", Json::Arr(rows_json))
            .build(),
    );
    sweep::finish(&args, &json);
}
