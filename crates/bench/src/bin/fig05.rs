//! Figure 5 — latency distribution (PDF) of the off-chip memory accesses
//! issued by the core running milc in workload-2.
//!
//! Paper shape to reproduce: most accesses cluster around the average, with
//! a small but heavy tail of very slow accesses (the "late" accesses
//! Scheme-1 targets).

use noclat::{run_mix, SystemConfig};
use noclat_bench::{banner, core_of, lengths_from_args};
use noclat_workloads::{workload, SpecApp};

fn main() {
    banner(
        "Figure 5: Latency distribution of milc's off-chip accesses (workload-2)",
        "Columns: delay bin center | fraction of accesses | bar",
    );
    let lengths = lengths_from_args();
    let r = run_mix(&SystemConfig::baseline_32(), &workload(2).apps(), lengths);
    let core = core_of(&r, SpecApp::Milc).expect("workload-2 contains milc");
    let h = &r.system.tracker().app(core).total;
    for (center, frac) in h.pdf_points() {
        if frac > 0.0005 {
            let bar = "#".repeat((frac * 400.0).round() as usize);
            println!("{center:>6}  {frac:>7.4}  {bar}");
        }
    }
    println!(
        "\nmean {:.0} cycles, p90 {} cycles, p99 {} cycles, max {} cycles",
        h.mean(),
        h.percentile(0.90),
        h.percentile(0.99),
        h.max()
    );
    let tail = 1.0 - h.cdf_at((1.7 * h.mean()) as u64);
    println!(
        "fraction of accesses beyond 1.7 x mean: {:.1}% (paper: ~10% beyond 600 with mean ~350)",
        tail * 100.0
    );
}
