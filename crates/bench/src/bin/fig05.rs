//! Figure 5 — latency distribution (PDF) of the off-chip memory accesses
//! issued by the core running milc in workload-2.
//!
//! Paper shape to reproduce: most accesses cluster around the average, with
//! a small but heavy tail of very slow accesses (the "late" accesses
//! Scheme-1 targets).
//!
//! Sharded across independently seeded replicates on the worker pool; the
//! merged histogram is identical for every `--jobs` value.

use noclat::{run_mix, AppLatency, SystemConfig};
use noclat_bench::{banner, core_of};
use noclat_engine::{self as sweep, histogram_json, Obj, SweepArgs, DEFAULT_SHARDS};
use noclat_workloads::{workload, SpecApp};

fn main() {
    let args = SweepArgs::parse(&format!("fig05 {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 5: Latency distribution of milc's off-chip accesses (workload-2)",
        "Columns: delay bin center | fraction of accesses | bar",
    );
    let lengths = args.lengths;
    let policy = args.policy.clone();
    let kernel = args.kernel;
    let shards = sweep::run_shards(&args, "fig05/w2", DEFAULT_SHARDS, move |_, seed| {
        let mut cfg = SystemConfig::baseline_32();
        cfg.seed = seed;
        policy.apply(&mut cfg);
        cfg.kernel = kernel;
        let r = run_mix(&cfg, &workload(2).apps(), lengths);
        let core = core_of(&r, SpecApp::Milc).expect("workload-2 contains milc");
        r.system.tracker().app(core).clone()
    });
    let mut app = AppLatency::empty();
    for shard in &shards {
        app.merge(shard);
    }
    let h = &app.total;
    for (center, frac) in h.pdf_points() {
        if frac > 0.0005 {
            let bar = "#".repeat((frac * 400.0).round() as usize);
            println!("{center:>6}  {frac:>7.4}  {bar}");
        }
    }
    println!(
        "\nmean {:.0} cycles, p90 {} cycles, p99 {} cycles, max {} cycles",
        h.mean(),
        h.percentile(0.90),
        h.percentile(0.99),
        h.max()
    );
    let tail = 1.0 - h.cdf_at((1.7 * h.mean()) as u64);
    println!(
        "fraction of accesses beyond 1.7 x mean: {:.1}% (paper: ~10% beyond 600 with mean ~350)",
        tail * 100.0
    );
    let json = sweep::report(
        "fig05",
        &args,
        Obj::new()
            .field("workload", 2u64)
            .field("app", "milc")
            .field("shards", DEFAULT_SHARDS)
            .field("latency", histogram_json(h))
            .field("tail_beyond_1p7x_mean", tail)
            .build(),
    );
    sweep::finish(&args, &json);
}
