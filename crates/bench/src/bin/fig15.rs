//! Figure 15 — normalized weighted speedups on the 16-core system (4x4
//! mesh, 2 memory controllers), using the first half of each workload.
//!
//! Paper shape to reproduce: gains are positive but smaller than on the
//! 32-core system (the network contributes less to round-trip latency in a
//! smaller mesh). Paper averages: ~8% (mixed), ~11% (intensive), ~1.5%
//! (non-intensive) for Scheme-1+2.

use noclat::SystemConfig;
use noclat_bench::{banner, lengths_from_args, pct, run_with_ws, w, AloneTable};
use noclat_sim::stats::geomean;
use noclat_workloads::{indices_of, WorkloadKind};

fn main() {
    banner(
        "Figure 15: Normalized weighted speedup on the 16-core (4x4) system",
        "First half of each Table-2 workload; 2 memory controllers.",
    );
    let lengths = lengths_from_args();
    let hw = SystemConfig::baseline_16();
    let mut alone = AloneTable::new();
    for kind in [
        WorkloadKind::Mixed,
        WorkloadKind::MemIntensive,
        WorkloadKind::MemNonIntensive,
    ] {
        println!("\n--- {kind:?} ---");
        println!(
            "{:>12} {:>9} {:>10} {:>12}",
            "workload", "base WS", "Scheme-1", "Scheme-1+2"
        );
        let mut s1s = Vec::new();
        let mut boths = Vec::new();
        for i in indices_of(kind) {
            let apps = w(i).first_half();
            let table = alone.table(&hw, &apps, lengths);
            let (_, base) = run_with_ws(&hw, &apps, &table, lengths);
            let (_, s1) = run_with_ws(&hw.clone().with_scheme1(), &apps, &table, lengths);
            let (_, both) = run_with_ws(&hw.clone().with_both_schemes(), &apps, &table, lengths);
            println!(
                "{:>12} {:>9.3} {:>10.3} {:>12.3}",
                w(i).name(),
                base,
                s1 / base,
                both / base
            );
            s1s.push(s1 / base);
            boths.push(both / base);
        }
        let g1 = geomean(&s1s).unwrap_or(1.0);
        let g2 = geomean(&boths).unwrap_or(1.0);
        println!(
            "{:>12} geomean: Scheme-1 {}, Scheme-1+2 {}",
            "",
            pct(g1),
            pct(g2)
        );
    }
}
