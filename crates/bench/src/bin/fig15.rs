//! Figure 15 — normalized weighted speedups on the 16-core system (4x4
//! mesh, 2 memory controllers), using the first half of each workload.
//!
//! Paper shape to reproduce: gains are positive but smaller than on the
//! 32-core system (the network contributes less to round-trip latency in a
//! smaller mesh). Paper averages: ~8% (mixed), ~11% (intensive), ~1.5%
//! (non-intensive) for Scheme-1+2.
//!
//! Two parallel phases, as in fig11: alone-IPC denominators, then the
//! 18 × 3 workload × scheme mix grid.

use noclat::SystemConfig;
use noclat_bench::{banner, pct, run_with_ws, w};
use noclat_engine::{self as sweep, AloneMap, Job, Json, Obj, SweepArgs};
use noclat_sim::stats::geomean;
use noclat_workloads::{indices_of, WorkloadKind};

fn main() {
    let args = SweepArgs::parse(&format!("fig15 {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 15: Normalized weighted speedup on the 16-core (4x4) system",
        "First half of each Table-2 workload; 2 memory controllers.",
    );
    let lengths = args.lengths;
    let mut hw = SystemConfig::baseline_16();
    hw.seed = args.seed;

    let requests: Vec<_> = (1..=18).map(|i| (hw.clone(), w(i).first_half())).collect();
    let alone = AloneMap::compute(&args, &requests);

    let mut jobs = Vec::new();
    for i in 1..=18 {
        let apps = w(i).first_half();
        let table = alone.table(&hw, &apps);
        for variant in ["base", "s1", "both"] {
            let mut cfg = match variant {
                "base" => hw.clone(),
                "s1" => hw.clone().with_scheme1(),
                _ => hw.clone().with_both_schemes(),
            };
            args.apply_policy(&mut cfg);
            let apps = apps.clone();
            let table = table.clone();
            jobs.push(Job::new(
                format!("fig15/{}/{variant}", w(i).name()),
                move || run_with_ws(&cfg, &apps, &table, lengths).1,
            ));
        }
    }
    let ws = sweep::run_grid(&args, jobs);

    let mut rows_json = Vec::new();
    let mut geo_json = Obj::new();
    for kind in [
        WorkloadKind::Mixed,
        WorkloadKind::MemIntensive,
        WorkloadKind::MemNonIntensive,
    ] {
        println!("\n--- {kind:?} ---");
        println!(
            "{:>12} {:>9} {:>10} {:>12}",
            "workload", "base WS", "Scheme-1", "Scheme-1+2"
        );
        let mut s1s = Vec::new();
        let mut boths = Vec::new();
        for i in indices_of(kind) {
            let base = ws[(i - 1) * 3];
            let s1 = ws[(i - 1) * 3 + 1] / base;
            let both = ws[(i - 1) * 3 + 2] / base;
            println!(
                "{:>12} {:>9.3} {:>10.3} {:>12.3}",
                w(i).name(),
                base,
                s1,
                both
            );
            s1s.push(s1);
            boths.push(both);
            rows_json.push(
                Obj::new()
                    .field("workload", w(i).name())
                    .field("kind", format!("{kind:?}"))
                    .field("base_ws", base)
                    .field("s1", s1)
                    .field("both", both)
                    .build(),
            );
        }
        let g1 = geomean(&s1s).unwrap_or(1.0);
        let g2 = geomean(&boths).unwrap_or(1.0);
        println!(
            "{:>12} geomean: Scheme-1 {}, Scheme-1+2 {}",
            "",
            pct(g1),
            pct(g2)
        );
        geo_json = geo_json.field(
            format!("{kind:?}"),
            Obj::new().field("s1", g1).field("both", g2).build(),
        );
    }

    let json = sweep::report(
        "fig15",
        &args,
        Obj::new()
            .field("cores", 16u64)
            .field("workloads", Json::Arr(rows_json))
            .field("geomeans", geo_json.build())
            .build(),
    );
    sweep::finish(&args, &json);
}
