//! Topology sweep — scheme gains across fabrics at hundreds-cores scale.
//!
//! Grids (topology × MC placement × scheme combo × size) through the
//! journal-backed sweep engine. The paper only evaluates small meshes; this
//! harness re-runs the Scheme-1/Scheme-2 study unchanged on torus,
//! concentrated-mesh and express fabrics at 16×16 (256 cores) and 32×32
//! (1024 cores), with memory-controller placement as a swept sub-axis.
//!
//! Unlike the figure harnesses, `--topology` is rejected here: the fabric
//! *is* the sweep axis. Use `--fabrics`/`--mc`/`--size` to restrict the
//! grid instead (CI smokes a single torus cell that way). Output is
//! byte-identical across `--jobs N` by the sweep engine's construction.

use noclat::{run_mix, McPlacement, RunLengths, SystemConfig, TopologyKind, TopologyOverride};
use noclat_bench::{banner, merged_latency_histogram, w};
use noclat_engine::{self as sweep, exit_code, GridCell, Job, Json, Obj, PruneInfo, SweepArgs};
use noclat_workloads::SpecApp;

/// Workload driving every cell (the paper's milc-bearing mixed workload).
const WORKLOAD: usize = 2;

const SCHEMES: [&str; 4] = ["baseline", "s1", "s2", "both"];

/// Default fabric axis, as `--topology`-style override specs.
const FABRICS: [&str; 4] = ["mesh", "torus", "cmesh:c=4", "express:skip=2"];

fn usage() -> String {
    format!(
        "topo_sweep [--size 16|32|both] [--fabrics CSV] [--mc CSV] {}",
        sweep::SWEEP_USAGE
    )
}

fn fail_usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {}", usage());
    std::process::exit(exit_code::CONFIG);
}

struct Grid {
    sizes: Vec<u16>,
    fabrics: Vec<String>,
    mcs: Vec<McPlacement>,
}

fn parse_rest(rest: &[String]) -> Grid {
    let mut grid = Grid {
        sizes: vec![16],
        fabrics: FABRICS.iter().map(ToString::to_string).collect(),
        mcs: vec![McPlacement::Corner, McPlacement::Edge, McPlacement::Center],
    };
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i].as_str();
        let value = rest
            .get(i + 1)
            .unwrap_or_else(|| fail_usage(&format!("{key} needs a value")));
        match key {
            "--size" => {
                grid.sizes = match value.as_str() {
                    "16" => vec![16],
                    "32" => vec![32],
                    "both" => vec![16, 32],
                    other => fail_usage(&format!("--size: expected 16|32|both, got {other}")),
                };
            }
            "--fabrics" => {
                grid.fabrics = value.split(',').map(ToString::to_string).collect();
            }
            "--mc" => {
                grid.mcs = value
                    .split(',')
                    .map(|m| McPlacement::parse(m).unwrap_or_else(|e| fail_usage(&e)))
                    .collect();
            }
            other => fail_usage(&format!("unknown argument {other}")),
        }
        i += 2;
    }
    grid
}

fn base_config(size: u16) -> SystemConfig {
    match size {
        16 => SystemConfig::baseline_256(),
        32 => SystemConfig::baseline_1024(),
        other => unreachable!("unsupported grid size {other}"),
    }
}

fn with_scheme(base: &SystemConfig, scheme: &str) -> SystemConfig {
    match scheme {
        "baseline" => base.clone(),
        "s1" => base.clone().with_scheme1(),
        "s2" => base.clone().with_scheme2(),
        "both" => base.clone().with_both_schemes(),
        other => unreachable!("unknown scheme {other}"),
    }
}

/// One cell's metrics: (offchip, ipc_sum, mean_latency, p95_latency).
type Cell = (u64, f64, f64, u64);

fn run_cell(cfg: &SystemConfig, apps: &[SpecApp], lengths: RunLengths) -> Cell {
    let r = run_mix(cfg, apps, lengths);
    let merged = merged_latency_histogram(&r);
    (
        r.per_app.iter().map(|a| a.offchip).sum(),
        r.per_app.iter().map(|a| a.ipc).sum(),
        merged.mean(),
        merged.percentile(0.95),
    )
}

fn main() {
    let (args, rest) = SweepArgs::parse_with_rest(&usage());
    if !args.topology.is_empty() {
        fail_usage(
            "topo_sweep sweeps the topology axis itself; restrict it with --fabrics/--mc/--size",
        );
    }
    let grid = parse_rest(&rest);
    banner(
        "Topology sweep: scheme gains across fabrics at 16x16 / 32x32",
        "Grid: topology x MC placement x scheme combo x size; workload-2 cycled per core.",
    );
    let lengths = args.lengths;

    // Build the grid (validated up front so a bad --fabrics spec is a usage
    // error, not a quarantined cell). Every cell carries its model inputs
    // so `--prune analytic:top=K` can rank it; the pinned 16×16 torus
    // corner cells (the `tests/golden_results.rs` anchors) are golden and
    // survive any pruning.
    let mut cells: Vec<GridCell<Cell>> = Vec::new();
    let mut labels: Vec<(String, String, String, String)> = Vec::new();
    for &size in &grid.sizes {
        let mut base = base_config(size);
        base.seed = args.seed;
        for spec in &grid.fabrics {
            let ov = TopologyOverride::parse(spec).unwrap_or_else(|e| fail_usage(&e));
            for &mc in &grid.mcs {
                for scheme in SCHEMES {
                    let mut cfg = with_scheme(&base, scheme);
                    args.policy.apply(&mut cfg);
                    cfg.kernel = args.kernel;
                    ov.apply(&mut cfg);
                    cfg.topology.mc_placement = mc;
                    if let Err(e) = cfg.validate() {
                        fail_usage(&format!("{spec} at {size}x{size}: {e}"));
                    }
                    let apps = w(WORKLOAD).apps_for(cfg.num_cores());
                    let label = format!("topo/{size}x{size}/{spec}/mc={}/{scheme}", mc.name());
                    labels.push((
                        format!("{size}x{size}"),
                        cfg.topology.label(),
                        mc.name().to_string(),
                        scheme.to_string(),
                    ));
                    let golden = size == 16
                        && cfg.topology.kind == TopologyKind::Torus
                        && cfg.topology.concentration <= 1
                        && mc == McPlacement::Corner;
                    let prune = Some(PruneInfo {
                        cfg: cfg.clone(),
                        apps: apps.clone(),
                        golden,
                    });
                    cells.push(GridCell {
                        job: Job::new(label, move || run_cell(&cfg, &apps, lengths)),
                        prune,
                    });
                }
            }
        }
    }
    let outcome = sweep::run_pruned_grid(&args, cells);

    println!(
        "{:>7} {:>22} {:>7} {:>9} {:>9} {:>9} {:>10} {:>6}",
        "size", "fabric", "mc", "scheme", "offchip", "ipc_sum", "mean_lat", "p95"
    );
    let mut rows = Vec::new();
    let mut pruned_rows = Vec::new();
    for (i, ((size, fabric, mc, scheme), cell)) in labels.iter().zip(&outcome.results).enumerate() {
        let Some(&(offchip, ipc_sum, mean_lat, p95)) = cell.as_ref() else {
            // Pruned: recorded in the report's prune section, not as a row
            // (surviving rows stay byte-identical to an unpruned run's).
            pruned_rows.push(
                Obj::new()
                    .field("size", size.as_str())
                    .field("fabric", fabric.as_str())
                    .field("mc", mc.as_str())
                    .field("scheme", scheme.as_str())
                    .field(
                        "predicted_latency",
                        outcome.predicted[i].unwrap_or(f64::NAN),
                    )
                    .build(),
            );
            continue;
        };
        println!(
            "{size:>7} {fabric:>22} {mc:>7} {scheme:>9} {offchip:>9} {ipc_sum:>9.3} \
             {mean_lat:>10.1} {p95:>6}"
        );
        rows.push(
            Obj::new()
                .field("size", size.as_str())
                .field("fabric", fabric.as_str())
                .field("mc", mc.as_str())
                .field("scheme", scheme.as_str())
                .field("offchip", offchip)
                .field("ipc_sum", ipc_sum)
                .field("mean_latency", mean_lat)
                .field("p95_latency", p95)
                .build(),
        );
    }

    let mut body = Obj::new()
        .field("workload", format!("workload-{WORKLOAD}"))
        .field("cells", Json::Arr(rows));
    if args.prune.enabled() {
        body = body.field(
            "prune",
            Obj::new()
                .field("spec", args.prune.to_string())
                .field("kept", outcome.kept as u64)
                .field("pruned", Json::Arr(pruned_rows))
                .build(),
        );
    }
    let json = sweep::report("topo_sweep", &args, body.build());
    sweep::finish(&args, &json);
}
