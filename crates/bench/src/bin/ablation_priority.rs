//! Ablation — which parts of the prioritization machinery matter?
//!
//! Compares Scheme-1+2 with: (a) pipeline bypassing disabled (arbitration
//! priority only), (b) the starvation age guard reduced to zero (strict
//! priority), and (c) Scheme-2 alone. Workload-8 (memory-intensive) is the
//! most sensitive to all three.
//!
//! Two parallel phases: alone-IPC denominators, then the six-variant grid.

use noclat::SystemConfig;
use noclat_bench::{banner, pct, run_with_ws, w};
use noclat_engine::{self as sweep, AloneMap, Job, Obj, SweepArgs};

fn main() {
    let args = SweepArgs::parse(&format!("ablation_priority {}", sweep::SWEEP_USAGE));
    banner(
        "Ablation: prioritization machinery (workload-8)",
        "Normalized WS of Scheme-1+2 variants against the unprioritized baseline.",
    );
    let lengths = args.lengths;
    let apps = w(8).apps();
    let mut hw = SystemConfig::baseline_32();
    hw.seed = args.seed;
    let alone = AloneMap::compute(&args, &[(hw.clone(), apps.clone())]);
    let table = alone.table(&hw, &apps);

    let full = hw.clone().with_both_schemes();
    let mut no_bypass = full.clone();
    no_bypass.noc.bypass_enabled = false;
    let mut strict = full.clone();
    strict.noc.starvation_age_guard = 0;

    let variants: Vec<(&str, SystemConfig)> = vec![
        ("baseline", hw.clone()),
        ("s1", hw.clone().with_scheme1()),
        ("s2", hw.clone().with_scheme2()),
        ("full", full),
        ("no_bypass", no_bypass),
        ("strict", strict),
    ];
    let jobs: Vec<Job<f64>> = variants
        .iter()
        .map(|(name, cfg)| {
            let mut cfg = cfg.clone();
            args.apply_policy(&mut cfg);
            let apps = apps.clone();
            let table = table.clone();
            Job::new(format!("priority/{name}"), move || {
                run_with_ws(&cfg, &apps, &table, lengths).1
            })
        })
        .collect();
    let ws = sweep::run_grid(&args, jobs);
    let base = ws[0];

    println!("baseline WS                    : {base:.3}");
    println!("Scheme-1 only                  : {}", pct(ws[1] / base));
    println!("Scheme-2 only                  : {}", pct(ws[2] / base));
    println!("Scheme-1+2 (full)              : {}", pct(ws[3] / base));
    println!("Scheme-1+2, no bypassing       : {}", pct(ws[4] / base));
    println!("Scheme-1+2, zero age guard     : {}", pct(ws[5] / base));

    let json = sweep::report(
        "ablation_priority",
        &args,
        Obj::new()
            .field("workload", 8u64)
            .field("base_ws", base)
            .field("s1", ws[1] / base)
            .field("s2", ws[2] / base)
            .field("full", ws[3] / base)
            .field("no_bypass", ws[4] / base)
            .field("strict", ws[5] / base)
            .build(),
    );
    sweep::finish(&args, &json);
}
