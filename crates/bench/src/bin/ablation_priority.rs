//! Ablation — which parts of the prioritization machinery matter?
//!
//! Compares Scheme-1+2 with: (a) pipeline bypassing disabled (arbitration
//! priority only), (b) the starvation age guard reduced to zero (strict
//! priority), and (c) Scheme-2 alone. Workload-8 (memory-intensive) is the
//! most sensitive to all three.

use noclat::SystemConfig;
use noclat_bench::{banner, lengths_from_args, pct, run_with_ws, w, AloneTable};

fn main() {
    banner(
        "Ablation: prioritization machinery (workload-8)",
        "Normalized WS of Scheme-1+2 variants against the unprioritized baseline.",
    );
    let lengths = lengths_from_args();
    let mut alone = AloneTable::new();
    let apps = w(8).apps();
    let hw = SystemConfig::baseline_32();
    let table = alone.table(&hw, &apps, lengths);
    let (_, base) = run_with_ws(&hw, &apps, &table, lengths);

    let full = hw.clone().with_both_schemes();
    let (_, ws_full) = run_with_ws(&full, &apps, &table, lengths);

    let mut no_bypass = full.clone();
    no_bypass.noc.bypass_enabled = false;
    let (_, ws_nb) = run_with_ws(&no_bypass, &apps, &table, lengths);

    let mut strict = full.clone();
    strict.noc.starvation_age_guard = 0;
    let (_, ws_strict) = run_with_ws(&strict, &apps, &table, lengths);

    let s2_only = hw.clone().with_scheme2();
    let (_, ws_s2) = run_with_ws(&s2_only, &apps, &table, lengths);

    let s1_only = hw.clone().with_scheme1();
    let (_, ws_s1) = run_with_ws(&s1_only, &apps, &table, lengths);

    println!("baseline WS                    : {base:.3}");
    println!("Scheme-1 only                  : {}", pct(ws_s1 / base));
    println!("Scheme-2 only                  : {}", pct(ws_s2 / base));
    println!("Scheme-1+2 (full)              : {}", pct(ws_full / base));
    println!("Scheme-1+2, no bypassing       : {}", pct(ws_nb / base));
    println!("Scheme-1+2, zero age guard     : {}", pct(ws_strict / base));
}
