//! Bench: simulation-kernel throughput — cycles simulated per wall-second
//! under the cycle-driven and event-wheel kernels on a pinned, idle-heavy
//! 8×8 mesh.
//!
//! The workload is deliberately low-injection-rate: every core issues a long
//! serializing compute burst, a train of single-cycle filler, then one cold
//! load. Once the window fills behind the burst the core is provably idle
//! for thousands of cycles — exactly the regime the event wheel exists for
//! (the cycle kernel still scans all 64 routers and every bank each cycle).
//!
//! Writes `BENCH_kernel.json` (override with `--json PATH`) so CI can track
//! the kernel-speed trajectory; also cross-checks that both kernels retire
//! the same instruction count, a cheap smoke of the bit-identity contract.

use std::time::Instant;

use noclat::{KernelKind, Simulation, SystemConfig};
use noclat_bench::banner;
use noclat_cpu::{Instr, InstrStream};
use noclat_engine::{self as sweep, Json, Obj, SweepArgs};

/// Cycle-accurate idle-heavy traffic: a period-128 instruction pattern of
/// one 8000-cycle serializing burst, single-cycle fillers, and — every
/// eighth period, staggered by core — one cold load (a fresh line each
/// time, so the cache never absorbs it).
///
/// The shape is deliberate on two counts. The load sits right *behind* the
/// burst, so its data returns thousands of cycles before in-order commit
/// reaches it: memory latency never feeds back into core timing and the 64
/// cores stay in lockstep instead of drifting their memory episodes across
/// the whole period. And only 8 of the 64 cores load per period, far below
/// the DRAM drain rate, so the mesh and the controllers genuinely empty
/// between episodes rather than trickling responses all period long.
#[derive(Debug)]
struct SparseTraffic {
    slot: u64,
    count: u64,
}

impl InstrStream for SparseTraffic {
    fn next_instr(&mut self) -> Instr {
        let phase = self.count % 128;
        let period = self.count / 128;
        self.count += 1;
        match phase {
            0 => Instr::Compute { latency: 8_000 },
            1 if period % 8 == self.slot % 8 => Instr::Load {
                // Private per-core region, new line each time: always cold.
                addr: (1u64 << 41) | (self.slot << 32) | (period * 64),
            },
            _ => Instr::Compute { latency: 1 },
        }
    }
}

/// The pinned hardware point: the 32-core baseline stretched to a full
/// 8×8 mesh (64 tiles), controllers still at the corners.
fn pinned_config(kernel: KernelKind) -> SystemConfig {
    let mut cfg = SystemConfig::baseline_32();
    cfg.topology.height = 8;
    cfg.kernel = kernel;
    cfg
}

fn build(kernel: KernelKind) -> Simulation {
    let cfg = pinned_config(kernel);
    let streams: Vec<Box<dyn InstrStream>> = (0..cfg.num_cores())
        .map(|slot| {
            Box::new(SparseTraffic {
                slot: slot as u64,
                count: 0,
            }) as Box<dyn InstrStream>
        })
        .collect();
    Simulation::builder(cfg)
        .streams(streams)
        .build()
        .expect("pinned 8x8 config is valid")
}

/// Simulated-cycles-per-wall-second of `kernel`, best of `reps` timed
/// segments (first-touch allocation and frequency ramp land in the warmup
/// and the slower segments).
fn measure(kernel: KernelKind, cycles: u64, reps: u32) -> (f64, u64) {
    let mut sim = build(kernel);
    sim.warm_up(5_000);
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        sim.run(cycles);
        let wall = t0.elapsed().as_secs_f64();
        best = best.max(cycles as f64 / wall);
    }
    let committed: u64 = (0..sim.system().config().num_cores())
        .map(|c| sim.system().core_stats(c).committed)
        .sum();
    (best, committed)
}

fn main() {
    let args = SweepArgs::parse(&format!("kernel_bench {}", sweep::SWEEP_USAGE));
    banner(
        "Kernel throughput: cycle-driven vs event-wheel",
        "Idle-heavy 8x8 mesh; higher cycles/second is better, identical \
         committed counts are mandatory.",
    );
    let cycles = args.lengths.measure;
    let reps = 3;
    let (cycle_rate, cycle_committed) = measure(KernelKind::Cycle, cycles, reps);
    let (event_rate, event_committed) = measure(KernelKind::Event, cycles, reps);
    assert_eq!(
        cycle_committed, event_committed,
        "kernels disagree on committed instructions — bit-identity broken"
    );
    let speedup = event_rate / cycle_rate;
    println!(
        "{:>8} kernel: {:>12.0} cycles/s",
        KernelKind::Cycle.name(),
        cycle_rate
    );
    println!(
        "{:>8} kernel: {:>12.0} cycles/s",
        KernelKind::Event.name(),
        event_rate
    );
    println!("{:>8}        {speedup:>11.2}x", "speedup");

    let kernels = Json::Arr(vec![
        Obj::new()
            .field("kernel", KernelKind::Cycle.name())
            .field("cycles_per_wall_second", cycle_rate)
            .build(),
        Obj::new()
            .field("kernel", KernelKind::Event.name())
            .field("cycles_per_wall_second", event_rate)
            .build(),
    ]);
    let body = Obj::new()
        .field("config", "8x8 mesh, 64 cores, idle-heavy synthetic traffic")
        .field("cycles_per_segment", cycles)
        .field("segments", u64::from(reps))
        .field("committed", cycle_committed)
        .field("kernels", kernels)
        .field("event_speedup", speedup)
        .build();
    let report = sweep::report("kernel_bench", &args, body);
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_kernel.json"));
    if let Err(e) = sweep::write_json_file(&path, &report) {
        eprintln!("error: failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote JSON report to {}", path.display());
}
