//! Figure 11 — normalized weighted speedup of Scheme-1 and Scheme-1+2 over
//! the no-prioritization baseline, for all 18 workloads, grouped into the
//! paper's three panels (mixed / memory-intensive / memory-non-intensive).
//!
//! Paper shape to reproduce: Scheme-1+2 ≥ Scheme-1; memory-intensive
//! workloads gain the most, non-intensive the least; one or two workloads
//! may dip slightly below 1.0 under Scheme-1 alone (the paper saw this for
//! workloads 2 and 9).
//!
//! Two parallel phases: the alone-IPC denominators (one pool job per app)
//! and the 18 × 3 workload × scheme mix grid.

use noclat::SystemConfig;
use noclat_bench::{banner, pct, run_with_ws, w};
use noclat_engine::{self as sweep, AloneMap, Job, Json, Obj, SweepArgs};
use noclat_sim::stats::geomean;
use noclat_workloads::{indices_of, WorkloadKind};

fn main() {
    let args = SweepArgs::parse(&format!("fig11 {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 11: Normalized weighted speedup, 18 workloads, 32-core system",
        "Bars: Scheme-1 and Scheme-1+Scheme-2, normalized to the baseline.",
    );
    let lengths = args.lengths;
    let mut hw = SystemConfig::baseline_32();
    hw.seed = args.seed;

    let requests: Vec<_> = (1..=18).map(|i| (hw.clone(), w(i).apps())).collect();
    let alone = AloneMap::compute(&args, &requests);

    let mut jobs = Vec::new();
    for i in 1..=18 {
        let apps = w(i).apps();
        let table = alone.table(&hw, &apps);
        for variant in ["base", "s1", "both"] {
            let mut cfg = match variant {
                "base" => hw.clone(),
                "s1" => hw.clone().with_scheme1(),
                _ => hw.clone().with_both_schemes(),
            };
            args.apply_policy(&mut cfg);
            let apps = apps.clone();
            let table = table.clone();
            jobs.push(Job::new(
                format!("fig11/{}/{variant}", w(i).name()),
                move || run_with_ws(&cfg, &apps, &table, lengths).1,
            ));
        }
    }
    let ws = sweep::run_grid(&args, jobs);

    let mut rows_json = Vec::new();
    let mut geo_json = Obj::new();
    for kind in [
        WorkloadKind::Mixed,
        WorkloadKind::MemIntensive,
        WorkloadKind::MemNonIntensive,
    ] {
        println!("\n--- {kind:?} ---");
        println!(
            "{:>12} {:>9} {:>10} {:>12}",
            "workload", "base WS", "Scheme-1", "Scheme-1+2"
        );
        let mut s1s = Vec::new();
        let mut boths = Vec::new();
        for i in indices_of(kind) {
            let base = ws[(i - 1) * 3];
            let s1 = ws[(i - 1) * 3 + 1] / base;
            let both = ws[(i - 1) * 3 + 2] / base;
            println!(
                "{:>12} {:>9.3} {:>10.3} {:>12.3}",
                w(i).name(),
                base,
                s1,
                both
            );
            s1s.push(s1);
            boths.push(both);
            rows_json.push(
                Obj::new()
                    .field("workload", w(i).name())
                    .field("kind", format!("{kind:?}"))
                    .field("base_ws", base)
                    .field("s1", s1)
                    .field("both", both)
                    .build(),
            );
        }
        let g1 = geomean(&s1s).unwrap_or(1.0);
        let g2 = geomean(&boths).unwrap_or(1.0);
        println!(
            "{:>12} {:>9} {:>10} {:>12}   (Scheme-1 {}, Scheme-1+2 {})",
            "geomean",
            "",
            format!("{g1:.3}"),
            format!("{g2:.3}"),
            pct(g1),
            pct(g2)
        );
        geo_json = geo_json.field(
            format!("{kind:?}"),
            Obj::new().field("s1", g1).field("both", g2).build(),
        );
    }
    println!("\nPaper: up to +13% (mixed), +15% (intensive), +1% (non-intensive) for Scheme-1+2.");
    println!("See EXPERIMENTS.md for the magnitude discussion.");

    let json = sweep::report(
        "fig11",
        &args,
        Obj::new()
            .field("workloads", Json::Arr(rows_json))
            .field("geomeans", geo_json.build())
            .build(),
    );
    sweep::finish(&args, &json);
}
