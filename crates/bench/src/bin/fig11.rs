//! Figure 11 — normalized weighted speedup of Scheme-1 and Scheme-1+2 over
//! the no-prioritization baseline, for all 18 workloads, grouped into the
//! paper's three panels (mixed / memory-intensive / memory-non-intensive).
//!
//! Paper shape to reproduce: Scheme-1+2 ≥ Scheme-1; memory-intensive
//! workloads gain the most, non-intensive the least; one or two workloads
//! may dip slightly below 1.0 under Scheme-1 alone (the paper saw this for
//! workloads 2 and 9).

use noclat::SystemConfig;
use noclat_bench::{banner, lengths_from_args, normalized_ws, pct, w, AloneTable};
use noclat_sim::stats::geomean;
use noclat_workloads::{indices_of, WorkloadKind};

fn main() {
    banner(
        "Figure 11: Normalized weighted speedup, 18 workloads, 32-core system",
        "Bars: Scheme-1 and Scheme-1+Scheme-2, normalized to the baseline.",
    );
    let lengths = lengths_from_args();
    let hw = SystemConfig::baseline_32();
    let mut alone = AloneTable::new();
    for kind in [
        WorkloadKind::Mixed,
        WorkloadKind::MemIntensive,
        WorkloadKind::MemNonIntensive,
    ] {
        println!("\n--- {kind:?} ---");
        println!(
            "{:>12} {:>9} {:>10} {:>12}",
            "workload", "base WS", "Scheme-1", "Scheme-1+2"
        );
        let mut s1s = Vec::new();
        let mut boths = Vec::new();
        for i in indices_of(kind) {
            let workload = w(i);
            let nws = normalized_ws(&hw, &workload, &mut alone, lengths);
            println!(
                "{:>12} {:>9.3} {:>10.3} {:>12.3}",
                workload.name(),
                nws.base,
                nws.s1,
                nws.both
            );
            s1s.push(nws.s1);
            boths.push(nws.both);
        }
        let g1 = geomean(&s1s).unwrap_or(1.0);
        let g2 = geomean(&boths).unwrap_or(1.0);
        println!(
            "{:>12} {:>9} {:>10} {:>12}   (Scheme-1 {}, Scheme-1+2 {})",
            "geomean",
            "",
            format!("{g1:.3}"),
            format!("{g2:.3}"),
            pct(g1),
            pct(g2)
        );
    }
    println!("\nPaper: up to +13% (mixed), +15% (intensive), +1% (non-intensive) for Scheme-1+2.");
    println!("See EXPERIMENTS.md for the magnitude discussion.");
}
