//! Fault-injection sweep: link drop rates × prioritization schemes.
//!
//! ```text
//! faultsim [--warmup CYCLES] [--measure CYCLES] [--workload N] [--seed SEED]
//! ```
//!
//! Runs the paper's baseline 32-core system under uniformly random link
//! drop faults at increasing rates, for every scheme configuration
//! (baseline, Scheme-1, Scheme-2, both), and prints one row per cell:
//! completed off-chip accesses, aggregate IPC, dropped packets, recovery
//! retries, timeouts, lost transactions, and watchdog violations. With the
//! recovery layer on (the default), every drop rate must retire all
//! transactions — lost must stay zero.

use noclat::{run_mix, FaultPlan, RunLengths, SystemConfig};
use noclat_workloads::workload;

struct Args {
    warmup: u64,
    measure: u64,
    workload: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        warmup: 5_000,
        measure: 40_000,
        workload: 2,
        seed: 42,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{key} needs a value"))
        };
        match key {
            "--warmup" => args.warmup = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--measure" => args.measure = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--workload" => args.workload = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown argument {other}")),
        }
        i += 2;
    }
    if !(1..=18).contains(&args.workload) {
        return Err(format!("workload {} out of range (1..=18)", args.workload));
    }
    Ok(args)
}

fn usage() {
    eprintln!("usage: faultsim [--warmup N] [--measure N] [--workload 1..18] [--seed N]");
}

fn scheme_config(name: &str) -> SystemConfig {
    let mut cfg = SystemConfig::baseline_32();
    match name {
        "baseline" => {}
        "s1" => cfg.scheme1.enabled = true,
        "s2" => cfg.scheme2.enabled = true,
        "both" => cfg = cfg.with_both_schemes(),
        other => unreachable!("unknown scheme {other}"),
    }
    cfg
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    };
    let drop_rates = [0.0f64, 1e-5, 1e-4, 1e-3];
    let schemes = ["baseline", "s1", "s2", "both"];
    let apps = workload(args.workload).apps();
    let lengths = RunLengths {
        warmup: args.warmup,
        measure: args.measure,
    };
    println!(
        "fault sweep: workload {}, {}+{} cycles, drop rates {:?}",
        args.workload, args.warmup, args.measure, drop_rates
    );
    println!(
        "{:>9} {:>9} {:>9} {:>7.7} {:>8} {:>8} {:>8} {:>6} {:>10}",
        "scheme",
        "drop-rate",
        "offchip",
        "ipc",
        "dropped",
        "retries",
        "timeouts",
        "lost",
        "violations"
    );
    let mut all_retired = true;
    for scheme in schemes {
        for &rate in &drop_rates {
            let mut cfg = scheme_config(scheme);
            cfg.seed = args.seed;
            if rate > 0.0 {
                cfg.faults = FaultPlan::uniform_drop(args.seed ^ rate.to_bits(), rate);
            }
            let r = run_mix(&cfg, &apps, lengths);
            let offchip: u64 = r.per_app.iter().map(|a| a.offchip).sum();
            let ipc: f64 = r.per_app.iter().map(|a| a.ipc).sum();
            let rb = r.system.robustness();
            if rb.lost_txns > 0 {
                all_retired = false;
            }
            println!(
                "{:>9} {:>9.0e} {:>9} {:>7.3} {:>8} {:>8} {:>8} {:>6} {:>10}",
                scheme,
                rate,
                offchip,
                ipc,
                rb.packets_dropped,
                rb.retries,
                rb.timeouts,
                rb.lost_txns,
                rb.violations
            );
        }
    }
    if all_retired {
        println!("\nall transactions retired under every drop rate (zero lost)");
    } else {
        println!("\nWARNING: some transactions were lost despite recovery");
        std::process::exit(1);
    }
}
