//! Fault-injection sweep: link drop rates × prioritization schemes.
//!
//! ```text
//! faultsim [--jobs N] [--json PATH] [--workload N]
//!          [--warmup CYCLES] [--measure CYCLES] [--seed SEED]
//! ```
//!
//! Runs the paper's baseline 32-core system under uniformly random link
//! drop faults at increasing rates, for every scheme configuration
//! (baseline, Scheme-1, Scheme-2, both), and prints one row per cell:
//! completed off-chip accesses, aggregate IPC, dropped packets, recovery
//! retries, timeouts, lost transactions, and watchdog violations. With the
//! recovery layer on (the default), every drop rate must retire all
//! transactions — lost must stay zero.
//!
//! All 16 cells run as one pool grid.
//!
//! Exit codes (shared with every sweep binary, see `sweep::exit_code`):
//! 0 success, 2 bad arguments/configuration, 3 a cell panicked, 4 a cell
//! exceeded `--job-timeout`, 5 transactions were lost (watchdog/liveness
//! regression).

use noclat::{run_mix, FaultPlan, SystemConfig};
use noclat_engine::{self as sweep, Job, Json, Obj, SweepArgs};
use noclat_workloads::workload;

const USAGE: &str = "faultsim [--jobs N] [--json PATH] [--workload 1..18] [--warmup N] \
     [--measure N] [--seed N] [--policy req=NAME,resp=NAME,arb=NAME] \
     [--kernel cycle|event] [--resume PATH] [--job-timeout SECS] [--retries N]";

const DROP_RATES: [f64; 4] = [0.0, 1e-5, 1e-4, 1e-3];
const SCHEMES: [&str; 4] = ["baseline", "s1", "s2", "both"];

fn scheme_config(name: &str) -> SystemConfig {
    let mut cfg = SystemConfig::baseline_32();
    match name {
        "baseline" => {}
        "s1" => cfg.scheme1.enabled = true,
        "s2" => cfg.scheme2.enabled = true,
        "both" => cfg = cfg.with_both_schemes(),
        other => unreachable!("unknown scheme {other}"),
    }
    cfg
}

/// One sweep cell: completed off-chip accesses, aggregate IPC, and the
/// robustness counters.
type Cell = (u64, f64, u64, u64, u64, u64, u64);

fn main() {
    // The fault sweep keeps its historical short default window and seed;
    // explicit flags (which follow the injected defaults) override them.
    let mut argv: Vec<String> = ["--warmup", "5000", "--measure", "40000", "--seed", "42"]
        .iter()
        .map(ToString::to_string)
        .collect();
    argv.extend(std::env::args().skip(1));
    let (args, rest) = match SweepArgs::parse_argv(&argv) {
        Ok(pair) => pair,
        Err(e) => {
            let help = e == "help";
            if !help {
                eprintln!("error: {e}");
            }
            eprintln!("usage: {USAGE}");
            std::process::exit(if help { 0 } else { 2 });
        }
    };
    let mut widx = 2usize;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--workload" => {
                let Some(v) = rest.get(i + 1) else {
                    eprintln!("error: --workload needs a value");
                    std::process::exit(2);
                };
                widx = match v.parse() {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("error: --workload: {e}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                eprintln!("usage: {USAGE}");
                std::process::exit(2);
            }
        }
    }
    if !(1..=18).contains(&widx) {
        eprintln!("error: workload {widx} out of range (1..=18)");
        std::process::exit(2);
    }

    let apps = workload(widx).apps();
    let lengths = args.lengths;
    println!(
        "fault sweep: workload {widx}, {}+{} cycles, drop rates {:?}",
        lengths.warmup, lengths.measure, DROP_RATES
    );
    println!(
        "{:>9} {:>9} {:>9} {:>7.7} {:>8} {:>8} {:>8} {:>6} {:>10}",
        "scheme",
        "drop-rate",
        "offchip",
        "ipc",
        "dropped",
        "retries",
        "timeouts",
        "lost",
        "violations"
    );

    let mut jobs = Vec::new();
    for scheme in SCHEMES {
        for &rate in &DROP_RATES {
            let apps = apps.clone();
            let seed = args.seed;
            let policy = args.policy.clone();
            let kernel = args.kernel;
            jobs.push(Job::new(
                format!("faultsim/{scheme}/{rate:e}"),
                move || -> Cell {
                    let mut cfg = scheme_config(scheme);
                    cfg.seed = seed;
                    policy.apply(&mut cfg);
                    cfg.kernel = kernel;
                    if rate > 0.0 {
                        cfg.faults = FaultPlan::uniform_drop(seed ^ rate.to_bits(), rate);
                    }
                    let r = run_mix(&cfg, &apps, lengths);
                    let offchip: u64 = r.per_app.iter().map(|a| a.offchip).sum();
                    let ipc: f64 = r.per_app.iter().map(|a| a.ipc).sum();
                    let rb = r.system.robustness();
                    (
                        offchip,
                        ipc,
                        rb.packets_dropped,
                        rb.retries,
                        rb.timeouts,
                        rb.lost_txns,
                        rb.violations,
                    )
                },
            ));
        }
    }
    let cells = sweep::run_grid(&args, jobs);

    let mut all_retired = true;
    let mut cells_json = Vec::new();
    for (k, scheme) in SCHEMES.iter().enumerate() {
        for (j, &rate) in DROP_RATES.iter().enumerate() {
            let (offchip, ipc, dropped, retries, timeouts, lost, violations) =
                cells[k * DROP_RATES.len() + j];
            if lost > 0 {
                all_retired = false;
            }
            println!(
                "{scheme:>9} {rate:>9.0e} {offchip:>9} {ipc:>7.3} {dropped:>8} {retries:>8} \
                 {timeouts:>8} {lost:>6} {violations:>10}"
            );
            cells_json.push(
                Obj::new()
                    .field("scheme", *scheme)
                    .field("drop_rate", rate)
                    .field("offchip", offchip)
                    .field("ipc", ipc)
                    .field("dropped", dropped)
                    .field("retries", retries)
                    .field("timeouts", timeouts)
                    .field("lost", lost)
                    .field("violations", violations)
                    .build(),
            );
        }
    }
    if all_retired {
        println!("\nall transactions retired under every drop rate (zero lost)");
    } else {
        println!("\nWARNING: some transactions were lost despite recovery");
    }

    let json = sweep::report(
        "faultsim",
        &args,
        Obj::new()
            .field("workload", widx)
            .field("all_retired", all_retired)
            .field("cells", Json::Arr(cells_json))
            .build(),
    );
    sweep::finish(&args, &json);
    if !all_retired {
        // Distinct from config errors (2) and quarantined jobs (3/4), so CI
        // can tell a liveness regression apart from a harness failure.
        std::process::exit(sweep::exit_code::WATCHDOG);
    }
}
