//! Figure 12 — (a) CDFs of the off-chip access latencies of the first 8
//! applications in workload-1 under the baseline, (b) the same CDFs with
//! Scheme-1 enabled, and (c) the latency PDF of lbm before/after Scheme-1.
//!
//! Paper shape to reproduce: Scheme-1 shifts the CDF tails left (paper: the
//! 90th percentile drops from ~700 to ~600 cycles) and moves PDF mass out of
//! the high-delay region.
//!
//! Sharded: each scheme variant runs [`DEFAULT_SHARDS`] paired replicates
//! (shard `s` uses the same derived seed under both variants) whose latency
//! trackers merge exactly, so reports are identical for every `--jobs`.

use noclat::{run_mix, LatencyTracker, SystemConfig};
use noclat_bench::banner;
use noclat_engine::{self as sweep, histogram_json, job_seed, Job, Obj, SweepArgs, DEFAULT_SHARDS};
use noclat_workloads::{workload, SpecApp};

fn cdf_row(t: &LatencyTracker, cores: &[usize], x: u64) -> Vec<f64> {
    cores.iter().map(|&c| t.app(c).total.cdf_at(x)).collect()
}

fn print_cdfs(label: &str, t: &LatencyTracker, cores: &[usize]) -> f64 {
    println!("\n--- {label} ---");
    print!("{:>6}", "x");
    for &c in cores {
        print!(" {:>9}", format!("core{c}"));
    }
    println!();
    for x in (100..=1600).step_by(100) {
        print!("{x:>6}");
        for f in cdf_row(t, cores, x) {
            print!(" {f:>9.3}");
        }
        println!();
    }
    // The paper's headline: the x where 90% of accesses complete.
    let mut p90s = Vec::new();
    for &c in cores {
        p90s.push(t.app(c).total.percentile(0.90));
    }
    let avg_p90 = p90s.iter().sum::<u64>() as f64 / p90s.len() as f64;
    println!("average 90th percentile across these apps: {avg_p90:.0} cycles");
    avg_p90
}

fn main() {
    let args = SweepArgs::parse(&format!("fig12 {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 12: CDFs of off-chip latency, first 8 apps of workload-1; PDF of lbm",
        "(a) baseline, (b) Scheme-1, (c) lbm PDF before/after.",
    );
    let lengths = args.lengths;
    let apps = workload(1).apps();
    let lbm = apps
        .iter()
        .position(|&a| a == SpecApp::Lbm)
        .expect("workload-1 contains lbm");

    let mut jobs = Vec::new();
    for scheme1 in [false, true] {
        for s in 0..DEFAULT_SHARDS {
            let seed = job_seed(args.seed, s); // paired across variants
            let apps = apps.clone();
            let policy = args.policy.clone();
            let kernel = args.kernel;
            let label = if scheme1 { "fig12/s1" } else { "fig12/base" };
            jobs.push(Job::new(format!("{label}/shard-{s}"), move || {
                let mut cfg = SystemConfig::baseline_32();
                if scheme1 {
                    cfg = cfg.with_scheme1();
                }
                cfg.seed = seed;
                policy.apply(&mut cfg);
                cfg.kernel = kernel;
                run_mix(&cfg, &apps, lengths).system.tracker().clone()
            }));
        }
    }
    let mut results = sweep::run_grid(&args, jobs);
    let shards = DEFAULT_SHARDS as usize;
    let s1_shards = results.split_off(shards);
    let mut base = results.remove(0);
    for t in &results {
        base.merge(t);
    }
    let mut s1 = s1_shards[0].clone();
    for t in &s1_shards[1..] {
        s1.merge(t);
    }

    let cores: Vec<usize> = (0..8).collect();
    let p90_base = print_cdfs("(a) baseline CDFs", &base, &cores);
    let p90_s1 = print_cdfs("(b) Scheme-1 CDFs", &s1, &cores);

    println!("\n--- (c) lbm latency PDF, baseline vs Scheme-1 (core {lbm}) ---");
    println!("{:>6} {:>9} {:>9}", "center", "base", "scheme1");
    let pb = base.app(lbm).total.pdf_points();
    let ps = s1.app(lbm).total.pdf_points();
    for i in 0..pb.len().max(ps.len()) {
        let (c, f1) = pb.get(i).copied().unwrap_or((i as u64 * 25 + 12, 0.0));
        let (_, f2) = ps.get(i).copied().unwrap_or((0, 0.0));
        if f1 > 0.001 || f2 > 0.001 {
            println!("{c:>6} {f1:>9.4} {f2:>9.4}");
        }
    }
    let hb = &base.app(lbm).total;
    let hs = &s1.app(lbm).total;
    println!(
        "\nlbm p90: {} -> {} cycles; p99: {} -> {}; tail (>1.7x mean): {:.1}% -> {:.1}%",
        hb.percentile(0.90),
        hs.percentile(0.90),
        hb.percentile(0.99),
        hs.percentile(0.99),
        (1.0 - hb.cdf_at((1.7 * hb.mean()) as u64)) * 100.0,
        (1.0 - hs.cdf_at((1.7 * hb.mean()) as u64)) * 100.0,
    );

    let json = sweep::report(
        "fig12",
        &args,
        Obj::new()
            .field("workload", 1u64)
            .field("shards", DEFAULT_SHARDS)
            .field("avg_p90_base", p90_base)
            .field("avg_p90_s1", p90_s1)
            .field("lbm_core", lbm)
            .field("lbm_base", histogram_json(hb))
            .field("lbm_s1", histogram_json(hs))
            .build(),
    );
    sweep::finish(&args, &json);
}
