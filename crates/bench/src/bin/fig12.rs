//! Figure 12 — (a) CDFs of the off-chip access latencies of the first 8
//! applications in workload-1 under the baseline, (b) the same CDFs with
//! Scheme-1 enabled, and (c) the latency PDF of lbm before/after Scheme-1.
//!
//! Paper shape to reproduce: Scheme-1 shifts the CDF tails left (paper: the
//! 90th percentile drops from ~700 to ~600 cycles) and moves PDF mass out of
//! the high-delay region.

use noclat::{run_mix, MixResult, SystemConfig};
use noclat_bench::{banner, core_of, lengths_from_args};
use noclat_workloads::{workload, SpecApp};

fn cdf_row(r: &MixResult, cores: &[usize], x: u64) -> Vec<f64> {
    cores
        .iter()
        .map(|&c| r.system.tracker().app(c).total.cdf_at(x))
        .collect()
}

fn print_cdfs(label: &str, r: &MixResult, cores: &[usize]) {
    println!("\n--- {label} ---");
    print!("{:>6}", "x");
    for &c in cores {
        print!(" {:>9}", format!("core{c}"));
    }
    println!();
    for x in (100..=1600).step_by(100) {
        print!("{x:>6}");
        for f in cdf_row(r, cores, x) {
            print!(" {f:>9.3}");
        }
        println!();
    }
    // The paper's headline: the x where 90% of accesses complete.
    let mut p90s = Vec::new();
    for &c in cores {
        p90s.push(r.system.tracker().app(c).total.percentile(0.90));
    }
    let avg_p90 = p90s.iter().sum::<u64>() as f64 / p90s.len() as f64;
    println!("average 90th percentile across these apps: {avg_p90:.0} cycles");
}

fn main() {
    banner(
        "Figure 12: CDFs of off-chip latency, first 8 apps of workload-1; PDF of lbm",
        "(a) baseline, (b) Scheme-1, (c) lbm PDF before/after.",
    );
    let lengths = lengths_from_args();
    let apps = workload(1).apps();
    let base = run_mix(&SystemConfig::baseline_32(), &apps, lengths);
    let s1 = run_mix(&SystemConfig::baseline_32().with_scheme1(), &apps, lengths);
    let cores: Vec<usize> = (0..8).collect();
    print_cdfs("(a) baseline CDFs", &base, &cores);
    print_cdfs("(b) Scheme-1 CDFs", &s1, &cores);

    let lbm = core_of(&base, SpecApp::Lbm).expect("workload-1 contains lbm");
    println!("\n--- (c) lbm latency PDF, baseline vs Scheme-1 (core {lbm}) ---");
    println!("{:>6} {:>9} {:>9}", "center", "base", "scheme1");
    let pb = base.system.tracker().app(lbm).total.pdf_points();
    let ps = s1.system.tracker().app(lbm).total.pdf_points();
    for i in 0..pb.len().max(ps.len()) {
        let (c, f1) = pb.get(i).copied().unwrap_or((i as u64 * 25 + 12, 0.0));
        let (_, f2) = ps.get(i).copied().unwrap_or((0, 0.0));
        if f1 > 0.001 || f2 > 0.001 {
            println!("{c:>6} {f1:>9.4} {f2:>9.4}");
        }
    }
    let hb = &base.system.tracker().app(lbm).total;
    let hs = &s1.system.tracker().app(lbm).total;
    println!(
        "\nlbm p90: {} -> {} cycles; p99: {} -> {}; tail (>1.7x mean): {:.1}% -> {:.1}%",
        hb.percentile(0.90),
        hs.percentile(0.90),
        hb.percentile(0.99),
        hs.percentile(0.99),
        (1.0 - hb.cdf_at((1.7 * hb.mean()) as u64)) * 100.0,
        (1.0 - hs.cdf_at((1.7 * hb.mean()) as u64)) * 100.0,
    );
}
