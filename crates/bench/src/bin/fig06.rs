//! Figure 6 — average idleness of the banks of one memory controller
//! (baseline, no prioritization).
//!
//! Paper shape to reproduce: idleness differs noticeably across banks — at
//! any time some banks sit idle while others serve queues (Motivation 2).

use noclat::{run_mix, SystemConfig};
use noclat_bench::{banner, lengths_from_args};
use noclat_workloads::workload;

fn main() {
    banner(
        "Figure 6: Average idleness of the banks of memory controller 0 (workload-2)",
        "A bank is idle when its queue is empty at a sampling instant.",
    );
    let lengths = lengths_from_args();
    let r = run_mix(&SystemConfig::baseline_32(), &workload(2).apps(), lengths);
    let idleness = r.system.idleness(0).per_bank_idleness();
    println!("{:>5} {:>9}  bar", "bank", "idleness");
    for (b, idl) in idleness.iter().enumerate() {
        let bar = "#".repeat((idl * 50.0).round() as usize);
        println!("{b:>5} {idl:>9.3}  {bar}");
    }
    let min = idleness.iter().copied().fold(f64::INFINITY, f64::min);
    let max = idleness.iter().copied().fold(0.0, f64::max);
    println!(
        "\nspread across banks: min {min:.3}, max {max:.3}, overall {:.3}",
        r.system.idleness(0).overall()
    );
}
