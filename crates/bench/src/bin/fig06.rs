//! Figure 6 — average idleness of the banks of one memory controller
//! (baseline, no prioritization).
//!
//! Paper shape to reproduce: idleness differs noticeably across banks — at
//! any time some banks sit idle while others serve queues (Motivation 2).
//!
//! Sharded across independently seeded replicates on the worker pool; the
//! reported idleness is the equal-weight mean across shards (every shard
//! samples the same number of instants), reduced in shard order so the
//! report is identical for every `--jobs` value.

use noclat::{run_mix, SystemConfig};
use noclat_bench::banner;
use noclat_engine::{self as sweep, Json, Obj, SweepArgs, DEFAULT_SHARDS};
use noclat_workloads::workload;

fn main() {
    let args = SweepArgs::parse(&format!("fig06 {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 6: Average idleness of the banks of memory controller 0 (workload-2)",
        "A bank is idle when its queue is empty at a sampling instant.",
    );
    let lengths = args.lengths;
    let policy = args.policy.clone();
    let kernel = args.kernel;
    let shards = sweep::run_shards(&args, "fig06/w2", DEFAULT_SHARDS, move |_, seed| {
        let mut cfg = SystemConfig::baseline_32();
        cfg.seed = seed;
        policy.apply(&mut cfg);
        cfg.kernel = kernel;
        let r = run_mix(&cfg, &workload(2).apps(), lengths);
        (
            r.system.idleness(0).per_bank_idleness(),
            r.system.idleness(0).overall(),
        )
    });
    let banks = shards[0].0.len();
    let mut idleness = vec![0.0f64; banks];
    let mut overall = 0.0f64;
    for (per_bank, ov) in &shards {
        for (acc, v) in idleness.iter_mut().zip(per_bank) {
            *acc += v;
        }
        overall += ov;
    }
    for v in &mut idleness {
        *v /= shards.len() as f64;
    }
    overall /= shards.len() as f64;

    println!("{:>5} {:>9}  bar", "bank", "idleness");
    for (b, idl) in idleness.iter().enumerate() {
        let bar = "#".repeat((idl * 50.0).round() as usize);
        println!("{b:>5} {idl:>9.3}  {bar}");
    }
    let min = idleness.iter().copied().fold(f64::INFINITY, f64::min);
    let max = idleness.iter().copied().fold(0.0, f64::max);
    println!("\nspread across banks: min {min:.3}, max {max:.3}, overall {overall:.3}");

    let json = sweep::report(
        "fig06",
        &args,
        Obj::new()
            .field("workload", 2u64)
            .field("controller", 0u64)
            .field("shards", DEFAULT_SHARDS)
            .field(
                "per_bank_idleness",
                Json::Arr(idleness.iter().map(|&v| Json::Num(v)).collect()),
            )
            .field("min", min)
            .field("max", max)
            .field("overall", overall)
            .build(),
    );
    sweep::finish(&args, &json);
}
