//! Figure 16c — impact of the number of memory controllers (2 vs 4) on the
//! combined schemes, mixed workloads 1-6.
//!
//! Paper shape to reproduce: with fewer controllers, pressure per controller
//! rises, there are more late accesses for Scheme-1 to catch, and combined
//! gains are slightly higher (with exceptions, e.g. the paper's w-2/w-3).
//!
//! Two parallel phases: alone-IPC denominators (one hardware point per
//! controller count — the [`AloneMap`] keeps them distinct), then the
//! 6 × 2 × 2 cell grid.

use noclat::SystemConfig;
use noclat_bench::{banner, run_with_ws, w};
use noclat_engine::{self as sweep, AloneMap, Job, Json, Obj, SweepArgs};
use noclat_sim::stats::geomean;

const MCS: [usize; 2] = [4, 2];

fn hw_with_mcs(seed: u64, mcs: usize) -> SystemConfig {
    let mut hw = SystemConfig::baseline_32();
    hw.seed = seed;
    hw.mem.num_controllers = mcs;
    hw
}

fn main() {
    let args = SweepArgs::parse(&format!("fig16c {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 16c: 2 vs 4 memory controllers (workloads 1-6, Scheme-1+2)",
        "Normalized WS per controller count.",
    );
    let lengths = args.lengths;

    let mut requests = Vec::new();
    for &mcs in &MCS {
        for i in 1..=6 {
            requests.push((hw_with_mcs(args.seed, mcs), w(i).apps()));
        }
    }
    let alone = AloneMap::compute(&args, &requests);

    let mut jobs = Vec::new();
    for i in 1..=6 {
        let apps = w(i).apps();
        for &mcs in &MCS {
            let hw = hw_with_mcs(args.seed, mcs);
            let table = alone.table(&hw, &apps);
            for both in [false, true] {
                let mut cfg = if both {
                    hw.clone().with_both_schemes()
                } else {
                    hw.clone()
                };
                args.apply_policy(&mut cfg);
                let apps = apps.clone();
                let table = table.clone();
                let label = if both { "both" } else { "base" };
                jobs.push(Job::new(
                    format!("fig16c/{}/{mcs}mc/{label}", w(i).name()),
                    move || run_with_ws(&cfg, &apps, &table, lengths).1,
                ));
            }
        }
    }
    let ws = sweep::run_grid(&args, jobs);

    println!("{:>12} {:>8} {:>8}", "workload", "4 MCs", "2 MCs");
    let mut cols: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut rows_json = Vec::new();
    for i in 1..=6 {
        let mut row = Vec::new();
        for (k, col) in cols.iter_mut().enumerate() {
            let at = (i - 1) * 4 + k * 2;
            let v = ws[at + 1] / ws[at];
            row.push(v);
            col.push(v);
        }
        println!("{:>12} {:>8.3} {:>8.3}", w(i).name(), row[0], row[1]);
        rows_json.push(
            Obj::new()
                .field("workload", w(i).name())
                .field("mc4", row[0])
                .field("mc2", row[1])
                .build(),
        );
    }
    let g4 = geomean(&cols[0]).unwrap_or(1.0);
    let g2 = geomean(&cols[1]).unwrap_or(1.0);
    println!("{:>12} {:>8.3} {:>8.3}", "geomean", g4, g2);

    let json = sweep::report(
        "fig16c",
        &args,
        Obj::new()
            .field("workloads", Json::Arr(rows_json))
            .field(
                "geomeans",
                Obj::new().field("mc4", g4).field("mc2", g2).build(),
            )
            .build(),
    );
    sweep::finish(&args, &json);
}
