//! Figure 16c — impact of the number of memory controllers (2 vs 4) on the
//! combined schemes, mixed workloads 1-6.
//!
//! Paper shape to reproduce: with fewer controllers, pressure per controller
//! rises, there are more late accesses for Scheme-1 to catch, and combined
//! gains are slightly higher (with exceptions, e.g. the paper's w-2/w-3).

use noclat::SystemConfig;
use noclat_bench::{banner, lengths_from_args, run_with_ws, w, AloneTable};
use noclat_sim::stats::geomean;

fn main() {
    banner(
        "Figure 16c: 2 vs 4 memory controllers (workloads 1-6, Scheme-1+2)",
        "Normalized WS per controller count.",
    );
    let lengths = lengths_from_args();
    let mut alone = AloneTable::new();
    println!("{:>12} {:>8} {:>8}", "workload", "4 MCs", "2 MCs");
    let mut cols: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for i in 1..=6 {
        let apps = w(i).apps();
        let mut row = Vec::new();
        for (k, mcs) in [4usize, 2].into_iter().enumerate() {
            let mut hw = SystemConfig::baseline_32();
            hw.mem.num_controllers = mcs;
            let table = alone.table(&hw, &apps, lengths);
            let (_, base) = run_with_ws(&hw, &apps, &table, lengths);
            let (_, ws) = run_with_ws(&hw.clone().with_both_schemes(), &apps, &table, lengths);
            row.push(ws / base);
            cols[k].push(ws / base);
        }
        println!("{:>12} {:>8.3} {:>8.3}", w(i).name(), row[0], row[1]);
    }
    println!(
        "{:>12} {:>8.3} {:>8.3}",
        "geomean",
        geomean(&cols[0]).unwrap_or(1.0),
        geomean(&cols[1]).unwrap_or(1.0)
    );
}
