//! Figure 16b — sensitivity of the combined schemes to Scheme-2's bank
//! history window T: {100, 200, 400} cycles, workloads 1-6.
//!
//! Paper shape to reproduce: T=200 is best on average; T=400 expedites too
//! few requests, T=100 misjudges idle banks.
//!
//! Two parallel phases: alone-IPC denominators, then the 6 × 4 cell grid
//! (baseline plus three window lengths per workload).

use noclat::SystemConfig;
use noclat_bench::{banner, run_with_ws, w};
use noclat_engine::{self as sweep, AloneMap, Job, Json, Obj, SweepArgs};
use noclat_sim::stats::geomean;

const WINDOWS: [u64; 3] = [100, 200, 400];

fn main() {
    let args = SweepArgs::parse(&format!("fig16b {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 16b: Bank-history-length sensitivity (workloads 1-6, Scheme-1+2)",
        "Normalized WS for T = 100, 200 and 400 cycles.",
    );
    let lengths = args.lengths;
    let mut hw = SystemConfig::baseline_32();
    hw.seed = args.seed;

    let requests: Vec<_> = (1..=6).map(|i| (hw.clone(), w(i).apps())).collect();
    let alone = AloneMap::compute(&args, &requests);

    let mut jobs = Vec::new();
    for i in 1..=6 {
        let apps = w(i).apps();
        let table = alone.table(&hw, &apps);
        for t in [0u64].iter().chain(WINDOWS.iter()) {
            // window 0 marks the unprioritized baseline cell
            let mut cfg = if *t == 0 {
                hw.clone()
            } else {
                let mut c = hw.clone().with_both_schemes();
                c.scheme2.history_window = *t;
                c
            };
            args.apply_policy(&mut cfg);
            let apps = apps.clone();
            let table = table.clone();
            jobs.push(Job::new(
                format!("fig16b/{}/T{t}", w(i).name()),
                move || run_with_ws(&cfg, &apps, &table, lengths).1,
            ));
        }
    }
    let ws = sweep::run_grid(&args, jobs);

    println!(
        "{:>12} {:>8} {:>8} {:>8}",
        "workload", "T=100", "T=200", "T=400"
    );
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut rows_json = Vec::new();
    for i in 1..=6 {
        let base = ws[(i - 1) * 4];
        let row: Vec<f64> = (0..3).map(|k| ws[(i - 1) * 4 + 1 + k] / base).collect();
        for (k, v) in row.iter().enumerate() {
            cols[k].push(*v);
        }
        println!(
            "{:>12} {:>8.3} {:>8.3} {:>8.3}",
            w(i).name(),
            row[0],
            row[1],
            row[2]
        );
        rows_json.push(
            Obj::new()
                .field("workload", w(i).name())
                .field("base_ws", base)
                .field("T100", row[0])
                .field("T200", row[1])
                .field("T400", row[2])
                .build(),
        );
    }
    let geo: Vec<f64> = cols.iter().map(|c| geomean(c).unwrap_or(1.0)).collect();
    println!(
        "{:>12} {:>8.3} {:>8.3} {:>8.3}",
        "geomean", geo[0], geo[1], geo[2]
    );

    let json = sweep::report(
        "fig16b",
        &args,
        Obj::new()
            .field(
                "windows",
                Json::Arr(WINDOWS.iter().map(|&t| Json::Uint(t)).collect()),
            )
            .field("workloads", Json::Arr(rows_json))
            .field(
                "geomeans",
                Obj::new()
                    .field("T100", geo[0])
                    .field("T200", geo[1])
                    .field("T400", geo[2])
                    .build(),
            )
            .build(),
    );
    sweep::finish(&args, &json);
}
