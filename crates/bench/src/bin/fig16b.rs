//! Figure 16b — sensitivity of the combined schemes to Scheme-2's bank
//! history window T: {100, 200, 400} cycles, workloads 1-6.
//!
//! Paper shape to reproduce: T=200 is best on average; T=400 expedites too
//! few requests, T=100 misjudges idle banks.

use noclat::SystemConfig;
use noclat_bench::{banner, lengths_from_args, run_with_ws, w, AloneTable};
use noclat_sim::stats::geomean;

fn main() {
    banner(
        "Figure 16b: Bank-history-length sensitivity (workloads 1-6, Scheme-1+2)",
        "Normalized WS for T = 100, 200 and 400 cycles.",
    );
    let lengths = lengths_from_args();
    let mut alone = AloneTable::new();
    println!(
        "{:>12} {:>8} {:>8} {:>8}",
        "workload", "T=100", "T=200", "T=400"
    );
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for i in 1..=6 {
        let apps = w(i).apps();
        let hw = SystemConfig::baseline_32();
        let table = alone.table(&hw, &apps, lengths);
        let (_, base) = run_with_ws(&hw, &apps, &table, lengths);
        let mut row = Vec::new();
        for (k, t) in [100u64, 200, 400].into_iter().enumerate() {
            let mut cfg = hw.clone().with_both_schemes();
            cfg.scheme2.history_window = t;
            let (_, ws) = run_with_ws(&cfg, &apps, &table, lengths);
            row.push(ws / base);
            cols[k].push(ws / base);
        }
        println!(
            "{:>12} {:>8.3} {:>8.3} {:>8.3}",
            w(i).name(),
            row[0],
            row[1],
            row[2]
        );
    }
    println!(
        "{:>12} {:>8.3} {:>8.3} {:>8.3}",
        "geomean",
        geomean(&cols[0]).unwrap_or(1.0),
        geomean(&cols[1]).unwrap_or(1.0),
        geomean(&cols[2]).unwrap_or(1.0)
    );
}
