//! Table 2 — the 18 multiprogrammed workloads, exactly as listed in the
//! paper (instance counts in parentheses).

use noclat_bench::banner;
use noclat_workloads::{all_workloads, WorkloadKind};

fn main() {
    banner(
        "Table 2: Workloads used in the 32-core experiments",
        "18 mixes of SPEC CPU2006 applications (instance counts in parentheses).",
    );
    let mut current = None;
    for w in all_workloads() {
        if current != Some(w.kind) {
            current = Some(w.kind);
            let label = match w.kind {
                WorkloadKind::Mixed => "MIXED",
                WorkloadKind::MemIntensive => "MEM-INTENSIVE",
                WorkloadKind::MemNonIntensive => "MEM-NON-INTENSIVE",
            };
            println!("\n--- {label} ---");
        }
        let desc: Vec<String> = w
            .entries
            .iter()
            .map(|(app, n)| format!("{}({n})", app.name()))
            .collect();
        println!("{:12} {}", w.name(), desc.join(", "));
        assert_eq!(w.num_apps(), 32);
    }
}
