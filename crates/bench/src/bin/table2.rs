//! Table 2 — the 18 multiprogrammed workloads, exactly as listed in the
//! paper (instance counts in parentheses). `--json PATH` writes the same
//! listing as a structured report.

use noclat_bench::banner;
use noclat_engine::{self as sweep, Json, Obj, SweepArgs};
use noclat_workloads::{all_workloads, WorkloadKind};

fn main() {
    let args = SweepArgs::parse(&format!("table2 {}", sweep::SWEEP_USAGE));
    banner(
        "Table 2: Workloads used in the 32-core experiments",
        "18 mixes of SPEC CPU2006 applications (instance counts in parentheses).",
    );
    let mut current = None;
    let mut rows_json = Vec::new();
    for w in all_workloads() {
        if current != Some(w.kind) {
            current = Some(w.kind);
            let label = match w.kind {
                WorkloadKind::Mixed => "MIXED",
                WorkloadKind::MemIntensive => "MEM-INTENSIVE",
                WorkloadKind::MemNonIntensive => "MEM-NON-INTENSIVE",
            };
            println!("\n--- {label} ---");
        }
        let desc: Vec<String> = w
            .entries
            .iter()
            .map(|(app, n)| format!("{}({n})", app.name()))
            .collect();
        println!("{:12} {}", w.name(), desc.join(", "));
        assert_eq!(w.num_apps(), 32);
        rows_json.push(
            Obj::new()
                .field("workload", w.name())
                .field("kind", format!("{:?}", w.kind))
                .field("apps", desc)
                .build(),
        );
    }
    let json = sweep::report(
        "table2",
        &args,
        Obj::new().field("workloads", Json::Arr(rows_json)).build(),
    );
    sweep::finish(&args, &json);
}
