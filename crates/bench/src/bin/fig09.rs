//! Figure 9 — two delay distributions for milc (workload-2): the round-trip
//! delays of complete accesses (dashed curve in the paper) and the so-far
//! delays observed right after the memory controller (solid curve), with the
//! Scheme-1 threshold marked.
//!
//! Paper shape to reproduce: the so-far distribution sits left of the
//! round-trip distribution; the threshold `1.2 × Delay_avg` cuts off the
//! so-far tail (the accesses Scheme-1 expedites).
//!
//! The measurement is sharded: [`DEFAULT_SHARDS`] independently seeded
//! replicates run on the worker pool (`--jobs N`) and their histograms merge
//! exactly, so `--jobs 1` and `--jobs 8` print and serialize identical
//! reports.

use noclat::{run_mix, AppLatency, SystemConfig};
use noclat_bench::{banner, core_of};
use noclat_engine::{self as sweep, histogram_json, Obj, SweepArgs, DEFAULT_SHARDS};
use noclat_workloads::{workload, SpecApp};

fn main() {
    let args = SweepArgs::parse(&format!("fig09 {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 9: Round-trip vs so-far delay distributions (milc, workload-2)",
        "Columns: bin center | round-trip fraction | so-far fraction",
    );
    let lengths = args.lengths;
    let policy = args.policy.clone();
    let kernel = args.kernel;
    let shards = sweep::run_shards(&args, "fig09/w2", DEFAULT_SHARDS, move |_, seed| {
        let mut cfg = SystemConfig::baseline_32();
        cfg.seed = seed;
        policy.apply(&mut cfg);
        cfg.kernel = kernel;
        let r = run_mix(&cfg, &workload(2).apps(), lengths);
        let core = core_of(&r, SpecApp::Milc).expect("workload-2 contains milc");
        r.system.tracker().app(core).clone()
    });
    let mut app = AppLatency::empty();
    for shard in &shards {
        app.merge(shard);
    }

    let rt = app.total.pdf_points();
    let sf = app.so_far.pdf_points();
    let n = rt.len().max(sf.len());
    println!("{:>6} {:>11} {:>9}", "center", "round-trip", "so-far");
    for i in 0..n {
        let (c1, f1) = rt.get(i).copied().unwrap_or((i as u64 * 25 + 12, 0.0));
        let (_, f2) = sf.get(i).copied().unwrap_or((0, 0.0));
        if f1 > 0.0005 || f2 > 0.0005 {
            println!("{c1:>6} {f1:>11.4} {f2:>9.4}");
        }
    }
    let cfg = SystemConfig::baseline_32();
    let delay_avg = app.total.mean();
    let threshold = cfg.scheme1.threshold_factor * delay_avg;
    println!("\nDelay_avg (round-trip)       : {delay_avg:.0} cycles");
    println!(
        "Delay_so-far_avg             : {:.0} cycles",
        app.so_far.mean()
    );
    println!(
        "threshold {} x Delay_avg     : {threshold:.0} cycles",
        cfg.scheme1.threshold_factor
    );
    let late = 1.0 - app.so_far.cdf_at(threshold as u64);
    println!(
        "so-far fraction beyond it    : {:.1}% (these become 'late')",
        late * 100.0
    );

    let json = sweep::report(
        "fig09",
        &args,
        Obj::new()
            .field("workload", 2u64)
            .field("app", "milc")
            .field("shards", DEFAULT_SHARDS)
            .field("round_trip", histogram_json(&app.total))
            .field("so_far", histogram_json(&app.so_far))
            .field("delay_avg", delay_avg)
            .field("threshold_factor", cfg.scheme1.threshold_factor)
            .field("threshold", threshold)
            .field("late_fraction", late)
            .build(),
    );
    sweep::finish(&args, &json);
}
