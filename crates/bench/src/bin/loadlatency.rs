//! Load–latency characterization of the NoC in isolation (extension): the
//! classic curves behind the paper's premise that "network latency can play
//! a significant role in overall memory access latency".
//!
//! Sweeps offered load for uniform-random and corner-hotspot traffic (the
//! S-NUCA + corner-controller shape) on the Table-1 network. Every
//! (pattern, load) point is one pool job — the curves are embarrassingly
//! parallel.

use noclat_bench::banner;
use noclat_engine::{self as sweep, Job, Json, Obj, SweepArgs};
use noclat_noc::{characterize, LoadPoint, Mesh, Network, TrafficPattern};
use noclat_sim::config::SystemConfig;

const PATTERNS: [(&str, TrafficPattern); 4] = [
    ("uniform-random", TrafficPattern::UniformRandom),
    (
        "corner-hotspot-30%",
        TrafficPattern::CornerHotspot { percent: 30 },
    ),
    ("transpose", TrafficPattern::Transpose),
    ("bit-complement", TrafficPattern::BitComplement),
];
const LOADS: [f64; 7] = [0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40];

fn main() {
    let args = SweepArgs::parse(&format!("loadlatency {}", sweep::SWEEP_USAGE));
    banner(
        "NoC load-latency curves (extension)",
        "Table-1 network, 5-flit packets; latency in cycles vs offered load.",
    );
    // Only the arbitration slot of --policy can matter here (the request/
    // response policies live above the raw network), so apply the override
    // before extracting the NoC configuration.
    let mut sys_cfg = SystemConfig::baseline_32();
    args.apply_policy(&mut sys_cfg);
    let cfg = sys_cfg.noc;
    // The synthetic-traffic driver has its own notion of run length.
    let quick = args.lengths.measure <= noclat::RunLengths::quick().measure;
    let cycles = if quick { 2_000 } else { 8_000 };
    let seed = args.seed;

    let mut jobs = Vec::new();
    for (name, pattern) in PATTERNS {
        for load in LOADS {
            jobs.push(Job::new(format!("loadlat/{name}/{load}"), move || {
                let mut net: Network<()> = Network::new(Mesh::new(8, 4), cfg);
                characterize(&mut net, pattern, load, 5, cycles, seed)
            }));
        }
    }
    let points = sweep::run_grid(&args, jobs);

    let mut curves_json = Vec::new();
    for (k, (name, _)) in PATTERNS.iter().enumerate() {
        println!("\n--- {name} ---");
        println!(
            "{:>8} {:>10} {:>10} {:>9}",
            "load", "delivered", "avg lat", "backlog"
        );
        let mut points_json = Vec::new();
        for p in &points[k * LOADS.len()..(k + 1) * LOADS.len()] {
            let LoadPoint {
                offered_load,
                delivered,
                avg_latency,
                backlog,
            } = *p;
            println!("{offered_load:>8.2} {delivered:>10} {avg_latency:>10.1} {backlog:>9}");
            points_json.push(
                Obj::new()
                    .field("offered_load", offered_load)
                    .field("delivered", delivered)
                    .field("avg_latency", avg_latency)
                    .field("backlog", backlog)
                    .build(),
            );
        }
        curves_json.push(
            Obj::new()
                .field("pattern", *name)
                .field("points", Json::Arr(points_json))
                .build(),
        );
    }
    println!("\nHotspot traffic saturates far earlier than uniform random: the");
    println!("corner links are the bottleneck the paper's request traffic lives on.");

    let json = sweep::report(
        "loadlatency",
        &args,
        Obj::new()
            .field("cycles", cycles)
            .field("curves", Json::Arr(curves_json))
            .build(),
    );
    sweep::finish(&args, &json);
}
