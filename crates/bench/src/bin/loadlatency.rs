//! Load–latency characterization of the NoC in isolation (extension): the
//! classic curves behind the paper's premise that "network latency can play
//! a significant role in overall memory access latency".
//!
//! Sweeps offered load for uniform-random and corner-hotspot traffic (the
//! S-NUCA + corner-controller shape) on the Table-1 network.

use noclat_bench::banner;
use noclat_noc::{characterize, Mesh, Network, TrafficPattern};
use noclat_sim::config::SystemConfig;

fn main() {
    banner(
        "NoC load-latency curves (extension)",
        "Table-1 network, 5-flit packets; latency in cycles vs offered load.",
    );
    let cfg = SystemConfig::baseline_32().noc;
    let quick = std::env::args().any(|a| a == "quick")
        || std::env::var("NOCLAT_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let cycles = if quick { 2_000 } else { 8_000 };
    for (name, pattern) in [
        ("uniform-random", TrafficPattern::UniformRandom),
        (
            "corner-hotspot-30%",
            TrafficPattern::CornerHotspot { percent: 30 },
        ),
        ("transpose", TrafficPattern::Transpose),
        ("bit-complement", TrafficPattern::BitComplement),
    ] {
        println!("\n--- {name} ---");
        println!(
            "{:>8} {:>10} {:>10} {:>9}",
            "load", "delivered", "avg lat", "backlog"
        );
        for load in [0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40] {
            let mut net: Network<()> = Network::new(Mesh::new(8, 4), cfg);
            let p = characterize(&mut net, pattern, load, 5, cycles, 11);
            println!(
                "{:>8.2} {:>10} {:>10.1} {:>9}",
                p.offered_load, p.delivered, p.avg_latency, p.backlog
            );
        }
    }
    println!("\nHotspot traffic saturates far earlier than uniform random: the");
    println!("corner links are the bottleneck the paper's request traffic lives on.");
}
