//! Bench: analytic-model validation — closed-form estimate vs cycle-sim
//! measurement on the pinned golden configurations.
//!
//! Runs the eight golden cells (`tests/golden_results.rs`: all four scheme
//! combos on the 32-core mesh baseline and on the 16×16 torus) through both
//! the cycle simulator and `noclat-analytic`, and reports the per-cell and
//! mean relative error of the estimator. This is the calibration
//! dashboard: `tests/analytic_validation.rs` pins the error band, this
//! binary shows where inside the band the model currently sits.
//!
//! The run lengths are pinned to the golden windows (they are part of what
//! the model estimates — the torus cells are deliberately window-limited),
//! so `--warmup`/`--measure`/`quick` are ignored. Writes
//! `BENCH_analytic.json` (override with `--json PATH`).

use noclat::{run_mix, RunLengths, SystemConfig, TopologyOverride};
use noclat_analytic::AnalyticModel;
use noclat_bench::{banner, merged_latency_histogram, w};
use noclat_engine::{self as sweep, Job, Json, Obj, SweepArgs};
use noclat_workloads::SpecApp;

/// Workload driving every golden cell.
const WORKLOAD: usize = 2;

const SCHEMES: [&str; 4] = ["baseline", "s1", "s2", "both"];

fn with_scheme(base: &SystemConfig, scheme: &str) -> SystemConfig {
    match scheme {
        "baseline" => base.clone(),
        "s1" => base.clone().with_scheme1(),
        "s2" => base.clone().with_scheme2(),
        "both" => base.clone().with_both_schemes(),
        other => unreachable!("unknown scheme {other}"),
    }
}

/// One golden family: a base config, its placement and its pinned window.
fn families() -> Vec<(&'static str, SystemConfig, Vec<SpecApp>, RunLengths)> {
    let mesh = SystemConfig::baseline_32();
    let mesh_apps = w(WORKLOAD).apps();
    let mesh_lengths = RunLengths {
        warmup: 300,
        measure: 12_000,
    };
    let mut torus = SystemConfig::baseline_256();
    TopologyOverride::parse("torus")
        .expect("static spec parses")
        .apply(&mut torus);
    let torus_apps = w(WORKLOAD).apps_for(torus.num_cores());
    let torus_lengths = RunLengths {
        warmup: 200,
        measure: 4_000,
    };
    vec![
        ("mesh-32", mesh, mesh_apps, mesh_lengths),
        ("torus-16x16", torus, torus_apps, torus_lengths),
    ]
}

fn main() {
    let args = SweepArgs::parse(&format!("analytic_validate {}", sweep::SWEEP_USAGE));
    banner(
        "Analytic-model validation: estimator vs cycle simulator",
        "Eight golden cells (mesh-32 + torus-16x16, four scheme combos); \
         relative error of the closed-form mean-latency estimate.",
    );

    let mut jobs: Vec<Job<f64>> = Vec::new();
    let mut estimates = Vec::new();
    let mut labels = Vec::new();
    for (family, base, apps, lengths) in families() {
        for scheme in SCHEMES {
            let cfg = with_scheme(&base, scheme);
            let model = AnalyticModel::new(&cfg, &apps)
                .expect("golden configs validate")
                .with_lengths(lengths.warmup, lengths.measure);
            estimates.push(model.evaluate());
            labels.push((family, scheme));
            let apps = apps.clone();
            jobs.push(Job::new(format!("analytic/{family}/{scheme}"), move || {
                merged_latency_histogram(&run_mix(&cfg, &apps, lengths)).mean()
            }));
        }
    }
    let simulated = sweep::run_grid(&args, jobs);

    println!(
        "{:>12} {:>9} {:>10} {:>10} {:>8} {:>9}",
        "family", "scheme", "model", "sim", "err", "stable"
    );
    let mut rows = Vec::new();
    let mut err_sum = 0.0;
    let mut err_max = 0.0f64;
    for ((&(family, scheme), report), &sim) in labels.iter().zip(&estimates).zip(&simulated) {
        let err = (report.mean_latency - sim) / sim;
        err_sum += err.abs();
        err_max = err_max.max(err.abs());
        println!(
            "{family:>12} {scheme:>9} {:>10.1} {sim:>10.1} {:>7.2}% {:>9}",
            report.mean_latency,
            err * 100.0,
            if report.stability.is_stable() {
                "yes"
            } else {
                "no"
            }
        );
        rows.push(
            Obj::new()
                .field("family", family)
                .field("scheme", scheme)
                .field("model_latency", report.mean_latency)
                .field("sim_latency", sim)
                .field("rel_error", err)
                .field("zero_load_latency", report.zero_load_latency)
                .field("max_channel_utilization", report.max_channel_utilization)
                .field("mc_utilization", report.mc_utilization)
                .field("stable", report.stability.is_stable())
                .build(),
        );
    }
    let mean_err = err_sum / simulated.len() as f64;
    println!(
        "{:>12} {:>9} {:>10} {:>10} {:>7.2}%",
        "mean |err|",
        "",
        "",
        "",
        mean_err * 100.0
    );

    let body = Obj::new()
        .field("workload", format!("workload-{WORKLOAD}"))
        .field("cells", Json::Arr(rows))
        .field("mean_rel_error", mean_err)
        .field("max_rel_error", err_max)
        .build();
    let report = sweep::report("analytic_validate", &args, body);
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_analytic.json"));
    if let Err(e) = sweep::write_json_file(&path, &report) {
        eprintln!("error: failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote JSON report to {}", path.display());
}
