//! General-purpose CLI front end for the simulator.
//!
//! ```text
//! simulate [--workload N] [--scheme none|s1|s2|both] [--cores 16|32]
//!          [--warmup CYCLES] [--measure CYCLES] [--seed SEED]
//!          [--routing xy|yx] [--sched frfcfs|frfcfs-cap|fcfs]
//! ```
//!
//! Prints a full report: per-application IPC and off-chip behaviour,
//! latency distribution summary, controller and network statistics.

use noclat::{run_mix, MemSchedPolicy, RunLengths, SystemConfig, SystemReport};
use noclat_sim::config::RoutingAlgorithm;
use noclat_workloads::workload;

struct Args {
    workload: usize,
    scheme: String,
    cores: usize,
    warmup: u64,
    measure: u64,
    seed: Option<u64>,
    routing: String,
    sched: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: 2,
        scheme: "both".into(),
        cores: 32,
        warmup: 20_000,
        measure: 150_000,
        seed: None,
        routing: "xy".into(),
        sched: "frfcfs".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{key} needs a value"))
        };
        match key {
            "--workload" => args.workload = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--scheme" => args.scheme = value(i)?.clone(),
            "--cores" => args.cores = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--warmup" => args.warmup = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--measure" => args.measure = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = Some(value(i)?.parse().map_err(|e| format!("{e}"))?),
            "--routing" => args.routing = value(i)?.clone(),
            "--sched" => args.sched = value(i)?.clone(),
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown argument {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: simulate [--workload 1..18] [--scheme none|s1|s2|both] \
         [--cores 16|32] [--warmup N] [--measure N] [--seed N] \
         [--routing xy|yx] [--sched frfcfs|frfcfs-cap|fcfs]"
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    };
    let mut cfg = match args.cores {
        32 => SystemConfig::baseline_32(),
        16 => SystemConfig::baseline_16(),
        n => {
            eprintln!("error: unsupported core count {n} (16 or 32)");
            std::process::exit(2);
        }
    };
    match args.scheme.as_str() {
        "none" => {}
        "s1" => cfg.scheme1.enabled = true,
        "s2" => cfg.scheme2.enabled = true,
        "both" => cfg = cfg.with_both_schemes(),
        other => {
            eprintln!("error: unknown scheme {other}");
            std::process::exit(2);
        }
    }
    cfg.noc.routing = match args.routing.as_str() {
        "xy" => RoutingAlgorithm::XY,
        "yx" => RoutingAlgorithm::YX,
        other => {
            eprintln!("error: unknown routing {other}");
            std::process::exit(2);
        }
    };
    cfg.mem.scheduler = match args.sched.as_str() {
        "frfcfs" => MemSchedPolicy::FrFcfs,
        "frfcfs-cap" => MemSchedPolicy::FrFcfsCap(4),
        "fcfs" => MemSchedPolicy::Fcfs,
        other => {
            eprintln!("error: unknown scheduler {other}");
            std::process::exit(2);
        }
    };
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    if !(1..=18).contains(&args.workload) {
        eprintln!("error: workload {} out of range (1..=18)", args.workload);
        usage();
        std::process::exit(2);
    }
    if args.measure == 0 {
        eprintln!("error: --measure must be at least 1 cycle");
        usage();
        std::process::exit(2);
    }

    let w = workload(args.workload);
    let apps = if args.cores == 16 {
        w.first_half()
    } else {
        w.apps()
    };
    println!(
        "simulating {} ({:?}) on {} cores, scheme={}, routing={}, sched={}, {}+{} cycles",
        w.name(),
        w.kind,
        args.cores,
        args.scheme,
        args.routing,
        args.sched,
        args.warmup,
        args.measure
    );
    let t0 = std::time::Instant::now();
    let r = run_mix(
        &cfg,
        &apps,
        RunLengths {
            warmup: args.warmup,
            measure: args.measure,
        },
    );
    println!("simulated in {:?}\n", t0.elapsed());
    println!("{}", SystemReport::from_result(&r));
}
