//! General-purpose CLI front end for the simulator.
//!
//! ```text
//! simulate [--workload N] [--scheme none|s1|s2|both] [--cores 16|32]
//!          [--warmup CYCLES] [--measure CYCLES] [--seed SEED]
//!          [--routing xy|yx] [--sched frfcfs|frfcfs-cap|fcfs]
//!          [--policy req=NAME,resp=NAME,arb=NAME] [--kernel cycle|event]
//!          [--jobs N] [--json PATH]
//! ```
//!
//! Prints a full report: per-application IPC and off-chip behaviour,
//! latency distribution summary, controller and network statistics.
//! `--json PATH` additionally writes the per-application numbers as a
//! structured report.

use noclat::{run_mix, MemSchedPolicy, SystemConfig, SystemReport};
use noclat_engine::{self as sweep, Job, Json, Obj, SweepArgs};
use noclat_sim::config::RoutingAlgorithm;
use noclat_workloads::workload;

const USAGE: &str = "simulate [--workload 1..18] [--scheme none|s1|s2|both] \
     [--cores 16|32] [--warmup N] [--measure N] [--seed N] \
     [--routing xy|yx] [--sched frfcfs|frfcfs-cap|fcfs] \
     [--policy req=NAME,resp=NAME,arb=NAME] [--kernel cycle|event] \
     [--jobs N] [--json PATH]";

struct Extra {
    workload: usize,
    scheme: String,
    cores: usize,
    routing: String,
    sched: String,
}

fn parse_extra(rest: &[String]) -> Result<Extra, String> {
    let mut extra = Extra {
        workload: 2,
        scheme: "both".into(),
        cores: 32,
        routing: "xy".into(),
        sched: "frfcfs".into(),
    };
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i].as_str();
        let value = || -> Result<&String, String> {
            rest.get(i + 1)
                .ok_or_else(|| format!("{key} needs a value"))
        };
        match key {
            "--workload" => extra.workload = value()?.parse().map_err(|e| format!("{e}"))?,
            "--scheme" => extra.scheme = value()?.clone(),
            "--cores" => extra.cores = value()?.parse().map_err(|e| format!("{e}"))?,
            "--routing" => extra.routing = value()?.clone(),
            "--sched" => extra.sched = value()?.clone(),
            other => return Err(format!("unknown argument {other}")),
        }
        i += 2;
    }
    Ok(extra)
}

fn main() {
    // The CLI keeps its historical default window; explicit flags (which
    // follow the injected defaults) override it.
    let mut argv: Vec<String> = ["--warmup", "20000", "--measure", "150000"]
        .iter()
        .map(ToString::to_string)
        .collect();
    argv.extend(std::env::args().skip(1));
    let (args, rest) = match SweepArgs::parse_argv(&argv) {
        Ok(pair) => pair,
        Err(e) => {
            let help = e == "help";
            if !help {
                eprintln!("error: {e}");
            }
            eprintln!("usage: {USAGE}");
            std::process::exit(if help { 0 } else { 2 });
        }
    };
    let extra = match parse_extra(&rest) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: {USAGE}");
            std::process::exit(2);
        }
    };
    let mut cfg = match extra.cores {
        32 => SystemConfig::baseline_32(),
        16 => SystemConfig::baseline_16(),
        n => {
            eprintln!("error: unsupported core count {n} (16 or 32)");
            std::process::exit(2);
        }
    };
    match extra.scheme.as_str() {
        "none" => {}
        "s1" => cfg.scheme1.enabled = true,
        "s2" => cfg.scheme2.enabled = true,
        "both" => cfg = cfg.with_both_schemes(),
        other => {
            eprintln!("error: unknown scheme {other}");
            std::process::exit(2);
        }
    }
    cfg.noc.routing = match extra.routing.as_str() {
        "xy" => RoutingAlgorithm::XY,
        "yx" => RoutingAlgorithm::YX,
        other => {
            eprintln!("error: unknown routing {other}");
            std::process::exit(2);
        }
    };
    cfg.mem.scheduler = match extra.sched.as_str() {
        "frfcfs" => MemSchedPolicy::FrFcfs,
        "frfcfs-cap" => MemSchedPolicy::FrFcfsCap(4),
        "fcfs" => MemSchedPolicy::Fcfs,
        other => {
            eprintln!("error: unknown scheduler {other}");
            std::process::exit(2);
        }
    };
    cfg.seed = args.seed;
    args.apply_policy(&mut cfg);
    if !(1..=18).contains(&extra.workload) {
        eprintln!("error: workload {} out of range (1..=18)", extra.workload);
        eprintln!("usage: {USAGE}");
        std::process::exit(2);
    }

    let w = workload(extra.workload);
    let apps = if extra.cores == 16 {
        w.first_half()
    } else {
        w.apps()
    };
    let req_policy = cfg.policy.request_name(cfg.scheme2.enabled).to_string();
    let resp_policy = cfg.policy.response_name(cfg.scheme1.enabled).to_string();
    println!(
        "simulating {} ({:?}) on {} cores, scheme={}, policy={req_policy}/{resp_policy}, \
         routing={}, sched={}, {}+{} cycles",
        w.name(),
        w.kind,
        extra.cores,
        extra.scheme,
        extra.routing,
        extra.sched,
        args.lengths.warmup,
        args.lengths.measure
    );
    let lengths = args.lengths;
    let t0 = std::time::Instant::now();
    let jobs = vec![Job::new("simulate".to_string(), move || {
        let r = run_mix(&cfg, &apps, lengths);
        let per_app: Vec<(String, f64, u64)> = r
            .per_app
            .iter()
            .map(|a| (a.app.name().to_string(), a.ipc, a.offchip))
            .collect();
        (format!("{}", SystemReport::from_result(&r)), per_app)
    })];
    let mut results = sweep::run_grid(&args, jobs);
    let (report_text, per_app) = results.remove(0);
    eprintln!("simulated in {:?}", t0.elapsed());
    println!("{report_text}");

    let apps_json: Vec<Json> = per_app
        .iter()
        .map(|(name, ipc, offchip)| {
            Obj::new()
                .field("app", name.clone())
                .field("ipc", *ipc)
                .field("offchip", *offchip)
                .build()
        })
        .collect();
    let json = sweep::report(
        "simulate",
        &args,
        Obj::new()
            .field("workload", extra.workload)
            .field("scheme", extra.scheme)
            .field("request_policy", req_policy)
            .field("response_policy", resp_policy)
            .field("cores", extra.cores)
            .field("routing", extra.routing)
            .field("sched", extra.sched)
            .field("per_app", Json::Arr(apps_json))
            .build(),
    );
    sweep::finish(&args, &json);
}
