//! Ablation — virtual channel count sweep (2/4/8 VCs per port) under the
//! combined schemes. More VCs reduce head-of-line blocking, which shrinks
//! the queueing the schemes can jump.

use noclat::SystemConfig;
use noclat_bench::{banner, lengths_from_args, pct, run_with_ws, w, AloneTable};

fn main() {
    banner(
        "Ablation: VCs per port (workload-2)",
        "Baseline WS and Scheme-1+2 gains per VC count.",
    );
    let lengths = lengths_from_args();
    let apps = w(2).apps();
    for vcs in [2usize, 4, 8] {
        let mut hw = SystemConfig::baseline_32();
        hw.noc.vcs_per_port = vcs;
        // Alone runs depend on the NoC too; rebuild the table per config.
        let mut alone = AloneTable::new();
        let table = alone.table(&hw, &apps, lengths);
        let (_, base) = run_with_ws(&hw, &apps, &table, lengths);
        let (_, both) = run_with_ws(&hw.clone().with_both_schemes(), &apps, &table, lengths);
        println!(
            "{vcs} VCs/port: base WS {base:.3}, Scheme-1+2 {}",
            pct(both / base)
        );
    }
}
