//! Ablation — virtual channel count sweep (2/4/8 VCs per port) under the
//! combined schemes. More VCs reduce head-of-line blocking, which shrinks
//! the queueing the schemes can jump.
//!
//! Two parallel phases: alone-IPC denominators (one hardware point per VC
//! count — alone runs depend on the NoC too, and the [`AloneMap`] keys by
//! the full hardware configuration), then the 3 × 2 cell grid.

use noclat::SystemConfig;
use noclat_bench::{banner, pct, run_with_ws, w};
use noclat_engine::{self as sweep, AloneMap, Job, Json, Obj, SweepArgs};

const VCS: [usize; 3] = [2, 4, 8];

fn hw_with_vcs(seed: u64, vcs: usize) -> SystemConfig {
    let mut hw = SystemConfig::baseline_32();
    hw.seed = seed;
    hw.noc.vcs_per_port = vcs;
    hw
}

fn main() {
    let args = SweepArgs::parse(&format!("ablation_vcs {}", sweep::SWEEP_USAGE));
    banner(
        "Ablation: VCs per port (workload-2)",
        "Baseline WS and Scheme-1+2 gains per VC count.",
    );
    let lengths = args.lengths;
    let apps = w(2).apps();

    let requests: Vec<_> = VCS
        .iter()
        .map(|&v| (hw_with_vcs(args.seed, v), apps.clone()))
        .collect();
    let alone = AloneMap::compute(&args, &requests);

    let mut jobs = Vec::new();
    for &vcs in &VCS {
        let hw = hw_with_vcs(args.seed, vcs);
        let table = alone.table(&hw, &apps);
        for both in [false, true] {
            let mut cfg = if both {
                hw.clone().with_both_schemes()
            } else {
                hw.clone()
            };
            args.apply_policy(&mut cfg);
            let apps = apps.clone();
            let table = table.clone();
            let label = if both { "both" } else { "base" };
            jobs.push(Job::new(format!("vcs/{vcs}/{label}"), move || {
                run_with_ws(&cfg, &apps, &table, lengths).1
            }));
        }
    }
    let ws = sweep::run_grid(&args, jobs);

    let mut rows_json = Vec::new();
    for (k, &vcs) in VCS.iter().enumerate() {
        let base = ws[k * 2];
        let both = ws[k * 2 + 1];
        println!(
            "{vcs} VCs/port: base WS {base:.3}, Scheme-1+2 {}",
            pct(both / base)
        );
        rows_json.push(
            Obj::new()
                .field("vcs_per_port", vcs)
                .field("base_ws", base)
                .field("both_over_base", both / base)
                .build(),
        );
    }

    let json = sweep::report(
        "ablation_vcs",
        &args,
        Obj::new()
            .field("workload", 2u64)
            .field("points", Json::Arr(rows_json))
            .build(),
    );
    sweep::finish(&args, &json);
}
