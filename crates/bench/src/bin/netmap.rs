//! Network congestion heat-map (beyond the paper): flits forwarded per
//! router for one workload, under X-Y and Y-X routing.
//!
//! The request traffic of an S-NUCA system converges on the corner memory
//! controllers; the heat-map makes the resulting hot rows/columns visible,
//! and shows how the routing algorithm moves them.

use noclat::{run_mix, MixResult, SystemConfig};
use noclat_bench::{banner, lengths_from_args};
use noclat_sim::config::RoutingAlgorithm;
use noclat_workloads::workload;

fn print_heat(label: &str, r: &MixResult, width: usize, height: usize) {
    let heat = r.system.forwarding_heat();
    let max = *heat.iter().max().unwrap_or(&1) as f64;
    println!("\n--- {label} (flits forwarded per router; # = load) ---");
    for y in 0..height {
        let mut row = String::new();
        for x in 0..width {
            let v = heat[y * width + x] as f64 / max.max(1.0);
            let glyph = match (v * 9.0) as u32 {
                0 => " .",
                1..=2 => " -",
                3..=4 => " +",
                5..=6 => " *",
                _ => " #",
            };
            row.push_str(glyph);
        }
        println!("  {row}");
    }
    println!(
        "  max router forwarded {} flits; total {}",
        max as u64,
        heat.iter().sum::<u64>()
    );
}

fn main() {
    banner(
        "Network heat-map (extension): router forwarding load, X-Y vs Y-X",
        "Workload-8 (memory-intensive); corners host the memory controllers.",
    );
    let lengths = lengths_from_args();
    let apps = workload(8).apps();
    for (label, algo) in [
        ("X-Y routing", RoutingAlgorithm::XY),
        ("Y-X routing", RoutingAlgorithm::YX),
    ] {
        let mut cfg = SystemConfig::baseline_32();
        cfg.noc.routing = algo;
        let r = run_mix(&cfg, &apps, lengths);
        print_heat(label, &r, 8, 4);
    }
}
