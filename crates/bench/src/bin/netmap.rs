//! Network congestion heat-map (beyond the paper): flits forwarded per
//! router for one workload, under X-Y and Y-X routing.
//!
//! The request traffic of an S-NUCA system converges on the corner memory
//! controllers; the heat-map makes the resulting hot rows/columns visible,
//! and shows how the routing algorithm moves them.
//!
//! Both routing runs execute as one pool grid.

use noclat::{run_mix, SystemConfig};
use noclat_bench::banner;
use noclat_engine::{self as sweep, Job, Json, Obj, SweepArgs};
use noclat_sim::config::RoutingAlgorithm;
use noclat_workloads::workload;

fn print_heat(label: &str, heat: &[u64], width: usize, height: usize) {
    let max = *heat.iter().max().unwrap_or(&1) as f64;
    println!("\n--- {label} (flits forwarded per router; # = load) ---");
    for y in 0..height {
        let mut row = String::new();
        for x in 0..width {
            let v = heat[y * width + x] as f64 / max.max(1.0);
            let glyph = match (v * 9.0) as u32 {
                0 => " .",
                1..=2 => " -",
                3..=4 => " +",
                5..=6 => " *",
                _ => " #",
            };
            row.push_str(glyph);
        }
        println!("  {row}");
    }
    println!(
        "  max router forwarded {} flits; total {}",
        max as u64,
        heat.iter().sum::<u64>()
    );
}

fn main() {
    let args = SweepArgs::parse(&format!("netmap {}", sweep::SWEEP_USAGE));
    banner(
        "Network heat-map (extension): router forwarding load, X-Y vs Y-X",
        "Workload-8 (memory-intensive); corners host the memory controllers.",
    );
    let lengths = args.lengths;
    let apps = workload(8).apps();
    let algos = [
        ("X-Y routing", RoutingAlgorithm::XY),
        ("Y-X routing", RoutingAlgorithm::YX),
    ];

    let mut jobs = Vec::new();
    for (label, algo) in algos {
        let apps = apps.clone();
        let seed = args.seed;
        let policy = args.policy.clone();
        let kernel = args.kernel;
        jobs.push(Job::new(format!("netmap/{label}"), move || {
            let mut cfg = SystemConfig::baseline_32();
            cfg.noc.routing = algo;
            cfg.seed = seed;
            policy.apply(&mut cfg);
            cfg.kernel = kernel;
            run_mix(&cfg, &apps, lengths).system.forwarding_heat()
        }));
    }
    let results = sweep::run_grid(&args, jobs);

    let mut maps_json = Vec::new();
    for ((label, _), heat) in algos.iter().zip(&results) {
        print_heat(label, heat, 8, 4);
        maps_json.push(
            Obj::new()
                .field("routing", *label)
                .field("heat", heat.clone())
                .build(),
        );
    }

    let json = sweep::report(
        "netmap",
        &args,
        Obj::new()
            .field("workload", 8u64)
            .field("width", 8u64)
            .field("height", 4u64)
            .field("maps", Json::Arr(maps_json))
            .build(),
    );
    sweep::finish(&args, &json);
}
