//! Slowest-transaction dissection (extension): the paper's Figure-3
//! narrative made concrete — for one workload, print the slowest off-chip
//! accesses of the run with their five-path breakdowns, under the baseline
//! and under Scheme-1.
//!
//! Both runs execute as one pool grid; the jobs return plain rows, so the
//! report is identical for every `--jobs` value.

use noclat::{run_mix, SystemConfig};
use noclat_bench::banner;
use noclat_engine::{self as sweep, Job, Json, Obj, SweepArgs};
use noclat_workloads::workload;

const TOP_K: usize = 15;

/// One slowest-access row: core, app name, total, five path segments.
type Row = (usize, String, u64, [u64; 5]);

fn print_slowest(label: &str, rows: &[Row]) {
    println!("\n--- {label}: {TOP_K} slowest off-chip accesses ---");
    println!(
        "{:>5} {:>12} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "core", "app", "total", "L1->L2", "L2->Mem", "Mem", "Mem->L2", "L2->L1"
    );
    for (core, app, total, s) in rows {
        println!(
            "{core:>5} {app:>12} {total:>7} {:>8} {:>8} {:>8} {:>8} {:>8}",
            s[0], s[1], s[2], s[3], s[4]
        );
    }
}

fn rows_json(rows: &[Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|(core, app, total, s)| {
                Obj::new()
                    .field("core", *core)
                    .field("app", app.clone())
                    .field("total", *total)
                    .field("segments", s.to_vec())
                    .build()
            })
            .collect(),
    )
}

fn main() {
    let args = SweepArgs::parse(&format!("slowest {}", sweep::SWEEP_USAGE));
    banner(
        "Slowest transactions (extension): where do late accesses lose time?",
        "Workload-8; baseline vs Scheme-1.",
    );
    let lengths = args.lengths;
    let apps = workload(8).apps();

    let mut jobs = Vec::new();
    for scheme1 in [false, true] {
        let apps = apps.clone();
        let seed = args.seed;
        let policy = args.policy.clone();
        let kernel = args.kernel;
        let label = if scheme1 { "s1" } else { "base" };
        jobs.push(Job::new(format!("slowest/{label}"), move || {
            let mut cfg = SystemConfig::baseline_32();
            if scheme1 {
                cfg = cfg.with_scheme1();
            }
            cfg.seed = seed;
            policy.apply(&mut cfg);
            cfg.kernel = kernel;
            let r = run_mix(&cfg, &apps, lengths);
            r.system
                .slowest_transactions()
                .iter()
                .take(TOP_K)
                .map(|rec| {
                    (
                        rec.core,
                        r.per_app[rec.core].app.name().to_string(),
                        rec.total(),
                        rec.times.segments(),
                    )
                })
                .collect::<Vec<Row>>()
        }));
    }
    let results = sweep::run_grid(&args, jobs);
    let (base, s1) = (&results[0], &results[1]);

    print_slowest("baseline", base);
    print_slowest("Scheme-1", s1);
    let worst = |rows: &[Row]| rows.first().map_or(0, |r| r.2);
    println!(
        "\nworst-case access: {} -> {} cycles",
        worst(base),
        worst(s1)
    );

    let json = sweep::report(
        "slowest",
        &args,
        Obj::new()
            .field("workload", 8u64)
            .field("baseline", rows_json(base))
            .field("scheme1", rows_json(s1))
            .build(),
    );
    sweep::finish(&args, &json);
}
