//! Slowest-transaction dissection (extension): the paper's Figure-3
//! narrative made concrete — for one workload, print the slowest off-chip
//! accesses of the run with their five-path breakdowns, under the baseline
//! and under Scheme-1.

use noclat::{run_mix, MixResult, SystemConfig};
use noclat_bench::{banner, lengths_from_args};
use noclat_workloads::workload;

fn print_slowest(label: &str, r: &MixResult, k: usize) {
    println!("\n--- {label}: {k} slowest off-chip accesses ---");
    println!(
        "{:>5} {:>12} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "core", "app", "total", "L1->L2", "L2->Mem", "Mem", "Mem->L2", "L2->L1"
    );
    for rec in r.system.slowest_transactions().iter().take(k) {
        let s = rec.times.segments();
        println!(
            "{:>5} {:>12} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}",
            rec.core,
            r.per_app[rec.core].app.name(),
            rec.total(),
            s[0],
            s[1],
            s[2],
            s[3],
            s[4]
        );
    }
}

fn main() {
    banner(
        "Slowest transactions (extension): where do late accesses lose time?",
        "Workload-8; baseline vs Scheme-1.",
    );
    let lengths = lengths_from_args();
    let apps = workload(8).apps();
    let base = run_mix(&SystemConfig::baseline_32(), &apps, lengths);
    print_slowest("baseline", &base, 15);
    let s1 = run_mix(&SystemConfig::baseline_32().with_scheme1(), &apps, lengths);
    print_slowest("Scheme-1", &s1, 15);
    let worst = |r: &MixResult| r.system.slowest_transactions()[0].total();
    println!(
        "\nworst-case access: {} -> {} cycles",
        worst(&base),
        worst(&s1)
    );
}
