//! Chaos harness for the resilient sweep engine: crash it on purpose,
//! prove recovery converges to the golden result.
//!
//! ```text
//! chaos <scenario> [--dir PATH]
//! ```
//!
//! Scenarios (each self-validates and exits nonzero on any divergence):
//!
//! * `kill`     — SIGKILL a journaled sweep mid-run, resume it, assert the
//!   final JSON is byte-identical to an uninterrupted golden run.
//! * `truncate` — chop the journal mid-record (a torn write), resume,
//!   assert byte-identical output.
//! * `corrupt`  — flip a byte in the journal tail (bit rot), resume,
//!   assert byte-identical output.
//! * `timeout`  — run a sweep with a deliberately hanging cell under
//!   `--job-timeout`: with no retries it must exit with the JobTimeout
//!   code (4); with `--retries 1` and a cell that hangs only on its first
//!   attempt it must succeed with golden output.
//! * `all`      — every scenario above, in order.
//!
//! The harness re-executes its own binary (`worker` subcommand, hidden) as
//! the victim process, so killing it never takes the orchestrator down.
//! The worker runs a small but real simulation grid through the standard
//! `SweepArgs`/`run_grid` path — exactly what every figure harness uses —
//! with optional `--chaos-sleep-*` flags to plant a hanging cell.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use noclat::{run_mix, RunLengths, SystemConfig};
use noclat_engine::{self as sweep, exit_code, Job, Json, Obj, SweepArgs};
use noclat_workloads::workload;

const USAGE: &str = "chaos kill|truncate|corrupt|timeout|all [--dir PATH]";

/// Cells in the worker's grid. Big enough that a mid-run kill leaves both
/// finished and unfinished cells behind; small enough to stay fast.
const GRID_CELLS: u64 = 6;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(scenario) = argv.first() else {
        eprintln!("usage: {USAGE}");
        std::process::exit(exit_code::CONFIG);
    };
    if scenario == "worker" {
        worker(&argv[1..]);
        return;
    }
    let mut dir = std::env::temp_dir().join(format!("noclat-chaos-{}", std::process::id()));
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--dir" => {
                let Some(v) = argv.get(i + 1) else {
                    eprintln!("error: --dir needs a value");
                    std::process::exit(exit_code::CONFIG);
                };
                dir = PathBuf::from(v);
                i += 2;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                eprintln!("usage: {USAGE}");
                std::process::exit(exit_code::CONFIG);
            }
        }
    }
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(exit_code::GENERIC);
    }

    let ok = match scenario.as_str() {
        "kill" => scenario_kill(&dir),
        "truncate" => scenario_damage(&dir, "truncate"),
        "corrupt" => scenario_damage(&dir, "corrupt"),
        "timeout" => scenario_timeout(&dir),
        "all" => {
            let mut ok = scenario_kill(&dir);
            ok &= scenario_damage(&dir, "truncate");
            ok &= scenario_damage(&dir, "corrupt");
            ok &= scenario_timeout(&dir);
            ok
        }
        other => {
            eprintln!("error: unknown scenario {other}");
            eprintln!("usage: {USAGE}");
            std::process::exit(exit_code::CONFIG);
        }
    };
    if ok {
        println!("chaos: all scenario checks passed");
    } else {
        eprintln!("chaos: FAILED");
        std::process::exit(exit_code::GENERIC);
    }
}

// ---------------------------------------------------------------------------
// The victim: a small real sweep through the standard harness path
// ---------------------------------------------------------------------------

/// Hidden subcommand run in a child process: a `GRID_CELLS`-cell simulation
/// grid through `SweepArgs`/`run_grid`, writing the standard JSON report.
///
/// `--chaos-sleep-cell I` plants a cell that blocks (cancellation-aware)
/// instead of simulating; with `--chaos-sleep-once` it only blocks on
/// attempt 0, modelling a transient hang that a retry clears.
fn worker(argv: &[String]) {
    let mut filtered = Vec::new();
    let mut sleep_cell: Option<u64> = None;
    let mut sleep_once = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--chaos-sleep-cell" => {
                sleep_cell = Some(argv[i + 1].parse().expect("--chaos-sleep-cell: bad index"));
                i += 2;
            }
            "--chaos-sleep-once" => {
                sleep_once = true;
                i += 1;
            }
            other => {
                filtered.push(other.to_string());
                i += 1;
            }
        }
    }
    let (args, rest) = SweepArgs::parse_argv(&filtered).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(exit_code::CONFIG);
    });
    if let Some(unknown) = rest.first() {
        eprintln!("error: unknown argument {unknown}");
        std::process::exit(exit_code::CONFIG);
    }

    let lengths = RunLengths {
        warmup: 200,
        measure: 1_500,
    };
    let jobs: Vec<Job<(u64, f64)>> = (0..GRID_CELLS)
        .map(|c| {
            let seed = sweep::job_seed(args.seed, c);
            let blocks = sleep_cell == Some(c);
            Job::with_ctx(format!("chaos/cell-{c}"), move |ctx| {
                if blocks && (!sleep_once || ctx.attempt == 0) {
                    // A hung cell: cancellation-aware so the process itself
                    // stays healthy; the deadline supervisor unblocks it.
                    let start = Instant::now();
                    while !ctx.cancel.is_cancelled() {
                        if start.elapsed() > Duration::from_secs(120) {
                            panic!("deadline supervisor never fired");
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    return (0, 0.0);
                }
                let mut cfg = SystemConfig::baseline_32();
                cfg.seed = seed;
                let r = run_mix(&cfg, &workload(2).apps(), lengths);
                (
                    r.per_app.iter().map(|a| a.offchip).sum(),
                    r.per_app.iter().map(|a| a.ipc).sum(),
                )
            })
        })
        .collect();
    let cells = sweep::run_grid(&args, jobs);
    let body: Vec<Json> = cells
        .iter()
        .map(|&(offchip, ipc)| {
            Obj::new()
                .field("offchip", offchip)
                .field("ipc", ipc)
                .build()
        })
        .collect();
    let json = sweep::report("chaos-worker", &args, Json::Arr(body));
    sweep::finish(&args, &json);
}

// ---------------------------------------------------------------------------
// Orchestration helpers
// ---------------------------------------------------------------------------

fn self_command() -> Command {
    Command::new(std::env::current_exe().expect("own binary path"))
}

fn worker_args(json: &Path, journal: Option<&Path>, extra: &[&str]) -> Vec<String> {
    let mut v = vec![
        "worker".to_string(),
        "--jobs".to_string(),
        "1".to_string(),
        "--json".to_string(),
        json.display().to_string(),
    ];
    if let Some(j) = journal {
        v.push("--resume".to_string());
        v.push(j.display().to_string());
    }
    v.extend(extra.iter().map(ToString::to_string));
    v
}

/// Runs a worker to completion, returning its exit code.
fn run_worker(json: &Path, journal: Option<&Path>, extra: &[&str]) -> i32 {
    let status = self_command()
        .args(worker_args(json, journal, extra))
        .stdout(Stdio::null())
        .status()
        .expect("spawn worker");
    status.code().unwrap_or(-1)
}

/// Golden output: an uninterrupted, unjournaled run.
fn golden(dir: &Path, name: &str) -> String {
    let path = dir.join(format!("{name}-golden.json"));
    let code = run_worker(&path, None, &[]);
    assert_eq!(code, 0, "golden run must succeed");
    std::fs::read_to_string(&path).expect("golden report")
}

fn count_records(journal: &Path) -> usize {
    std::fs::read_to_string(journal)
        .map(|t| t.lines().filter(|l| l.starts_with("r ")).count())
        .unwrap_or(0)
}

fn check(label: &str, ok: bool, detail: &str) -> bool {
    if ok {
        println!("chaos: {label}: ok");
    } else {
        eprintln!("chaos: {label}: FAILED ({detail})");
    }
    ok
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// SIGKILL the sweep once it has journaled some (but not all) cells, then
/// resume and require byte-identical output.
fn scenario_kill(dir: &Path) -> bool {
    let gold = golden(dir, "kill");
    let journal = dir.join("kill.nj");
    let json = dir.join("kill.json");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&json);

    let mut child = self_command()
        .args(worker_args(&json, Some(&journal), &[]))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim");
    // Kill as soon as the journal holds at least two records but before the
    // grid can finish (single worker, so cells land one at a time).
    let deadline = Instant::now() + Duration::from_secs(120);
    let killed_mid_run = loop {
        if child.try_wait().expect("poll victim").is_some() {
            break false; // finished before we could kill it
        }
        if count_records(&journal) >= 2 {
            child.kill().expect("SIGKILL victim"); // SIGKILL on unix
            child.wait().expect("reap victim");
            break true;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            break false;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let mut ok = check(
        "kill/mid-run",
        killed_mid_run,
        "victim finished before the kill landed; grid too small or machine too fast",
    );
    let records = count_records(&journal);
    ok &= check(
        "kill/journal-partial",
        records >= 2 && records < GRID_CELLS as usize,
        &format!("{records} records for {GRID_CELLS} cells"),
    );
    // The kill landed between a record flush and the report write, so the
    // report must not exist yet.
    ok &= check(
        "kill/no-report",
        !json.exists(),
        "victim wrote its report despite being killed",
    );
    let code = run_worker(&json, Some(&journal), &[]);
    ok &= check("kill/resume-exit", code == 0, &format!("exit {code}"));
    let resumed = std::fs::read_to_string(&json).unwrap_or_default();
    ok &= check(
        "kill/byte-identical",
        resumed == gold,
        "resumed JSON differs from the uninterrupted golden run",
    );
    ok
}

/// Damage the journal tail (truncate mid-record or flip a byte), then
/// resume and require byte-identical output.
fn scenario_damage(dir: &Path, kind: &str) -> bool {
    let gold = golden(dir, kind);
    let journal = dir.join(format!("{kind}.nj"));
    let json = dir.join(format!("{kind}.json"));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&json);

    // Build a complete journal, then damage its tail.
    let code = run_worker(&json, Some(&journal), &[]);
    let mut ok = check(
        &format!("{kind}/seed-run"),
        code == 0,
        &format!("exit {code}"),
    );
    let mut bytes = std::fs::read(&journal).expect("journal bytes");
    let n = bytes.len();
    match kind {
        "truncate" => bytes.truncate(n - 7), // tear the last record mid-line
        "corrupt" => bytes[n - 3] ^= 0x40,   // flip a payload bit in the tail
        other => unreachable!("unknown damage kind {other}"),
    }
    std::fs::write(&journal, &bytes).expect("write damaged journal");
    let _ = std::fs::remove_file(&json);

    let code = run_worker(&json, Some(&journal), &[]);
    ok &= check(
        &format!("{kind}/resume-exit"),
        code == 0,
        &format!("exit {code}"),
    );
    let resumed = std::fs::read_to_string(&json).unwrap_or_default();
    ok &= check(
        &format!("{kind}/byte-identical"),
        resumed == gold,
        "resumed JSON differs from the uninterrupted golden run",
    );
    // Recovery must have recomputed the damaged cell: the journal is whole
    // again and reusable.
    ok &= check(
        &format!("{kind}/journal-healed"),
        count_records(&journal) >= GRID_CELLS as usize,
        "re-run did not restore the damaged record",
    );
    ok
}

/// Deadline enforcement end-to-end: a hanging cell must fail the sweep with
/// the JobTimeout exit code, and a transient hang must be cleared by
/// `--retries 1` with golden output.
fn scenario_timeout(dir: &Path) -> bool {
    let gold = golden(dir, "timeout");
    let json = dir.join("timeout.json");
    let _ = std::fs::remove_file(&json);

    // Permanently hung cell, no retries: exit code 4, no report.
    let code = run_worker(
        &json,
        None,
        &["--job-timeout", "5", "--chaos-sleep-cell", "3"],
    );
    let mut ok = check(
        "timeout/exit-code",
        code == exit_code::JOB_TIMEOUT,
        &format!("exit {code}, want {}", exit_code::JOB_TIMEOUT),
    );
    ok &= check(
        "timeout/no-report",
        !json.exists(),
        "a quarantined sweep must not write a report",
    );

    // Transient hang (attempt 0 only) + one retry: full recovery.
    let code = run_worker(
        &json,
        None,
        &[
            "--job-timeout",
            "5",
            "--retries",
            "1",
            "--chaos-sleep-cell",
            "3",
            "--chaos-sleep-once",
        ],
    );
    ok &= check("timeout/retry-exit", code == 0, &format!("exit {code}"));
    let retried = std::fs::read_to_string(&json).unwrap_or_default();
    ok &= check(
        "timeout/retry-byte-identical",
        retried == gold,
        "retried JSON differs from the uninterrupted golden run",
    );
    ok
}
