//! Figure 14 — average bank idleness over the course of execution,
//! default vs Scheme-2.
//!
//! Paper shape to reproduce: the Scheme-2 curve sits below the default curve
//! across the run. As with Figure 13, the paper's workload-1 and the
//! higher-pressure workload-8 are both reported.
//!
//! All four (workload × scheme) cells run as one pool grid.

use noclat::{run_mix, SystemConfig};
use noclat_bench::banner;
use noclat_engine::{self as sweep, Job, Json, Obj, SweepArgs};
use noclat_workloads::workload;

const WORKLOADS: [usize; 2] = [1, 8];

fn main() {
    let args = SweepArgs::parse(&format!("fig14 {}", sweep::SWEEP_USAGE));
    banner(
        "Figure 14: Average bank idleness over time, default vs Scheme-2",
        "One row per 10k-cycle interval, averaged across controller 0's banks.",
    );
    let lengths = args.lengths;
    let mut jobs = Vec::new();
    for &widx in &WORKLOADS {
        for scheme2 in [false, true] {
            let seed = args.seed;
            let policy = args.policy.clone();
            let kernel = args.kernel;
            let label = if scheme2 { "scheme2" } else { "default" };
            jobs.push(Job::new(format!("fig14/w{widx}/{label}"), move || {
                let mut cfg = SystemConfig::baseline_32();
                if scheme2 {
                    cfg = cfg.with_scheme2();
                }
                cfg.seed = seed;
                policy.apply(&mut cfg);
                cfg.kernel = kernel;
                let r = run_mix(&cfg, &workload(widx).apps(), lengths);
                r.system.idleness(0).idleness_over_time()
            }));
        }
    }
    let results = sweep::run_grid(&args, jobs);

    let mut rows_json = Vec::new();
    for (k, &widx) in WORKLOADS.iter().enumerate() {
        let tb = &results[k * 2];
        let ts = &results[k * 2 + 1];
        println!("\n--- workload-{widx} (10k-cycle intervals, controller 0) ---");
        println!("{:>10} {:>9} {:>9}", "interval", "default", "scheme2");
        for i in 0..tb.len().min(ts.len()) {
            println!("{:>10} {:>9.3} {:>9.3}", i, tb[i], ts[i]);
        }
        let below = tb.iter().zip(ts).filter(|(b, s)| s <= b).count();
        println!(
            "Scheme-2 at or below default in {below}/{} intervals",
            tb.len().min(ts.len())
        );
        rows_json.push(
            Obj::new()
                .field("workload", widx)
                .field(
                    "default",
                    Json::Arr(tb.iter().map(|&v| Json::Num(v)).collect()),
                )
                .field(
                    "scheme2",
                    Json::Arr(ts.iter().map(|&v| Json::Num(v)).collect()),
                )
                .field("intervals_at_or_below", below)
                .build(),
        );
    }

    let json = sweep::report(
        "fig14",
        &args,
        Obj::new()
            .field("controller", 0u64)
            .field("workloads", Json::Arr(rows_json))
            .build(),
    );
    sweep::finish(&args, &json);
}
