//! Figure 14 — average bank idleness over the course of execution,
//! default vs Scheme-2.
//!
//! Paper shape to reproduce: the Scheme-2 curve sits below the default curve
//! across the run. As with Figure 13, the paper's workload-1 and the
//! higher-pressure workload-8 are both reported.

use noclat::{run_mix, MixResult, RunLengths, SystemConfig};
use noclat_bench::{banner, lengths_from_args};
use noclat_workloads::workload;

fn report(widx: usize, base: &MixResult, s2: &MixResult) {
    println!("\n--- workload-{widx} (10k-cycle intervals, controller 0) ---");
    let tb = base.system.idleness(0).idleness_over_time();
    let ts = s2.system.idleness(0).idleness_over_time();
    println!("{:>10} {:>9} {:>9}", "interval", "default", "scheme2");
    for i in 0..tb.len().min(ts.len()) {
        println!("{:>10} {:>9.3} {:>9.3}", i, tb[i], ts[i]);
    }
    let below = tb.iter().zip(&ts).filter(|(b, s)| s <= b).count();
    println!(
        "Scheme-2 at or below default in {below}/{} intervals",
        tb.len().min(ts.len())
    );
}

fn run_for(widx: usize, lengths: RunLengths) {
    let apps = workload(widx).apps();
    let base = run_mix(&SystemConfig::baseline_32(), &apps, lengths);
    let s2 = run_mix(&SystemConfig::baseline_32().with_scheme2(), &apps, lengths);
    report(widx, &base, &s2);
}

fn main() {
    banner(
        "Figure 14: Average bank idleness over time, default vs Scheme-2",
        "One row per 10k-cycle interval, averaged across controller 0's banks.",
    );
    let lengths = lengths_from_args();
    run_for(1, lengths);
    run_for(8, lengths);
}
