//! Parallel sweep engine for the figure/table harnesses.
//!
//! Every binary in `src/bin/` describes its experiment as a *grid* of
//! independent jobs (one per workload × scheme × knob cell, or one per
//! replicate shard of a distribution measurement) and hands the grid to
//! [`run_grid`], which fans it out over `--jobs N` worker threads via
//! [`noclat_sim::pool`]. Determinism is preserved by construction:
//!
//! * each job is self-contained and seeded only from
//!   `(base seed, job index)` via [`job_seed`],
//! * results come back in job-index order regardless of scheduling,
//! * all rendering (text and JSON) happens after the grid completes, from
//!   the ordered results.
//!
//! Running the same sweep with `--jobs 1` and `--jobs 8` therefore produces
//! byte-identical reports; only the wall-clock time changes. Progress notes
//! go to stderr so stdout stays comparable across worker counts.
//!
//! The `--json PATH` flag writes a structured report through the in-tree
//! [`Json`] value type (field order is explicit, so serialization is
//! deterministic; no external serialization crates are involved).

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use noclat::{
    alone_ipc, KernelKind, PolicyConfig, PolicyOverride, RunLengths, SimError, SystemConfig,
};
use noclat_workloads::SpecApp;

pub use noclat_sim::pool::{job_rng, job_seed, run_jobs, Job};

/// Number of replicate shards the distribution harnesses (fig04/05/06/09/12)
/// split their measurement into. Each shard is a full, independently seeded
/// run; shard statistics merge exactly, so more shards mean both more
/// parallelism and more samples.
pub const DEFAULT_SHARDS: u64 = 8;

/// Command-line arguments shared by every sweep binary.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Worker threads for the job grid (`--jobs N`; defaults to the
    /// machine's available parallelism).
    pub jobs: usize,
    /// Where to write the JSON report (`--json PATH`), if anywhere.
    pub json: Option<PathBuf>,
    /// Base RNG seed for the sweep (`--seed N`); per-job seeds derive from
    /// it via [`job_seed`].
    pub seed: u64,
    /// Simulation window (`quick`/`--quick` shrink it; `--warmup N` and
    /// `--measure N` override individual components).
    pub lengths: RunLengths,
    /// Prioritization-policy overrides
    /// (`--policy req=<name>,resp=<name>,arb=<name>`), applied to every
    /// configuration the sweep builds via [`SweepArgs::apply_policy`].
    pub policy: PolicyOverride,
    /// Simulation kernel (`--kernel cycle|event`). Kernels are bit-identical
    /// by contract (the equivalence suite enforces it), so this only trades
    /// wall-clock time; reports are comparable across kernels.
    pub kernel: KernelKind,
}

/// Flags accepted by [`SweepArgs::parse`], for inclusion in usage strings.
pub const SWEEP_USAGE: &str = "[--jobs N] [--json PATH] [--seed N] [--warmup N] [--measure N] \
     [--policy req=NAME,resp=NAME,arb=NAME] [--kernel cycle|event] [quick]";

impl SweepArgs {
    fn defaults() -> Self {
        SweepArgs {
            jobs: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            json: None,
            seed: SystemConfig::baseline_32().seed,
            lengths: RunLengths::standard(),
            policy: PolicyOverride::default(),
            kernel: KernelKind::default(),
        }
    }

    /// Parses `std::env::args`, accepting only the shared sweep flags.
    ///
    /// Exits with status 2 (printing `usage`) on an unknown argument, and
    /// with status 0 on `--help`.
    #[must_use]
    pub fn parse(usage: &str) -> SweepArgs {
        let (args, rest) = Self::parse_with_rest(usage);
        if let Some(unknown) = rest.first() {
            eprintln!("error: unknown argument {unknown}");
            eprintln!("usage: {usage}");
            std::process::exit(2);
        }
        args
    }

    /// Parses `std::env::args`, returning unrecognized arguments for the
    /// binary to interpret (used by `faultsim`/`simulate`, which add their
    /// own flags on top of the shared set).
    #[must_use]
    pub fn parse_with_rest(usage: &str) -> (SweepArgs, Vec<String>) {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_argv(&argv) {
            Ok(pair) => pair,
            Err(e) => {
                let help = e == "help";
                if !help {
                    eprintln!("error: {e}");
                }
                eprintln!("usage: {usage}");
                std::process::exit(if help { 0 } else { 2 });
            }
        }
    }

    /// Pure parsing core (testable without process state).
    pub fn parse_argv(argv: &[String]) -> Result<(SweepArgs, Vec<String>), String> {
        let mut args = Self::defaults();
        let mut quick = std::env::var("NOCLAT_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut warmup_override = None;
        let mut measure_override = None;
        let mut rest = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].as_str();
            let value = || -> Result<&String, String> {
                argv.get(i + 1)
                    .ok_or_else(|| format!("{key} needs a value"))
            };
            match key {
                "--jobs" => {
                    args.jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?;
                    if args.jobs == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    i += 2;
                }
                "--json" => {
                    args.json = Some(PathBuf::from(value()?));
                    i += 2;
                }
                "--seed" => {
                    args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?;
                    i += 2;
                }
                "--warmup" => {
                    warmup_override = Some(value()?.parse().map_err(|e| format!("--warmup: {e}"))?);
                    i += 2;
                }
                "--measure" => {
                    let m: u64 = value()?.parse().map_err(|e| format!("--measure: {e}"))?;
                    if m == 0 {
                        return Err("--measure must be at least 1 cycle".into());
                    }
                    measure_override = Some(m);
                    i += 2;
                }
                "--policy" => {
                    // PolicyOverride::parse already prefixes its errors
                    // with "--policy:".
                    args.policy = PolicyOverride::parse(value()?)?;
                    i += 2;
                }
                "--kernel" => {
                    // KernelKind::parse already prefixes its errors with
                    // "--kernel:".
                    args.kernel = KernelKind::parse(value()?)?;
                    i += 2;
                }
                "quick" | "--quick" => {
                    quick = true;
                    i += 1;
                }
                "--help" | "-h" => return Err("help".into()),
                _ => {
                    rest.push(argv[i].clone());
                    i += 1;
                }
            }
        }
        if quick {
            args.lengths = RunLengths::quick();
        }
        if let Some(w) = warmup_override {
            args.lengths.warmup = w;
        }
        if let Some(m) = measure_override {
            args.lengths.measure = m;
        }
        Ok((args, rest))
    }

    /// Applies this sweep's `--policy` and `--kernel` overrides to a
    /// configuration the harness is about to run. Call on every cell of the
    /// grid so the overrides reach scheme variants and knob sweeps alike; a
    /// sweep run without either flag is untouched.
    pub fn apply_policy(&self, cfg: &mut SystemConfig) {
        self.policy.apply(cfg);
        cfg.kernel = self.kernel;
    }
}

/// Runs a job grid under the sweep's worker budget and returns results in
/// job order, aborting the process with a per-job diagnostic if any job
/// failed.
///
/// The abort path reports *every* failing cell (a panicking cell does not
/// hide its siblings' outcomes) and exits with status 1.
#[must_use]
pub fn run_grid<T: Send>(args: &SweepArgs, jobs: Vec<Job<T>>) -> Vec<T> {
    let results = try_run_grid(args, jobs);
    let mut failed = false;
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    out
}

/// Like [`run_grid`], but surfaces per-job failures as values instead of
/// aborting (the library entry point the tests drive).
#[must_use]
pub fn try_run_grid<T: Send>(args: &SweepArgs, jobs: Vec<Job<T>>) -> Vec<Result<T, SimError>> {
    if jobs.len() > 1 {
        eprintln!(
            "sweep: {} jobs on {} worker(s)",
            jobs.len(),
            args.jobs.clamp(1, jobs.len())
        );
    }
    run_jobs(args.jobs, jobs)
}

/// Fans `shards` replicate runs of one measurement out to the pool: shard
/// `s` calls `make(s, job_seed(args.seed, s))` and the results come back in
/// shard order, ready to be merged. `make` must be deterministic in its
/// arguments.
#[must_use]
pub fn run_shards<T, F>(args: &SweepArgs, label: &str, shards: u64, make: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, u64) -> T + Send + Sync + 'static,
{
    let make = Arc::new(make);
    let jobs: Vec<Job<T>> = (0..shards)
        .map(|s| {
            let make = Arc::clone(&make);
            let seed = job_seed(args.seed, s);
            Job::new(format!("{label}/shard-{s}"), move || make(s, seed))
        })
        .collect();
    run_grid(args, jobs)
}

/// A table of alone-run IPCs (the weighted-speedup denominators), computed
/// as its own parallel phase so the mix-run grid never recomputes them.
///
/// Entries are keyed by the *full* hardware configuration (schemes
/// stripped, since alone runs never contend) plus the application, so
/// distinct hardware points — different meshes, VC counts, schedulers,
/// pipelines — never alias each other's denominators.
#[derive(Debug, Default)]
pub struct AloneMap {
    map: HashMap<(String, SpecApp), f64>,
}

/// Cache key of a hardware configuration for alone-run purposes: the Debug
/// rendering of the config with both schemes disabled (alone runs are
/// scheme-independent by construction — there is nothing to contend with).
#[must_use]
pub fn alone_key(cfg: &SystemConfig) -> String {
    let mut base = cfg.clone();
    base.scheme1.enabled = false;
    base.scheme2.enabled = false;
    base.policy = PolicyConfig::default();
    // Kernels are bit-identical, so cycle- and event-kernel sweeps share
    // their alone denominators (alone_ipc pins the default kernel too).
    base.kernel = KernelKind::default();
    format!("{base:?}")
}

impl AloneMap {
    /// Computes alone IPCs for every distinct `(hardware, app)` pair in
    /// `requests`, one pool job per pair.
    #[must_use]
    pub fn compute(args: &SweepArgs, requests: &[(SystemConfig, Vec<SpecApp>)]) -> AloneMap {
        let lengths = args.lengths;
        let mut pairs: Vec<(String, SystemConfig, SpecApp)> = Vec::new();
        let mut seen: HashSet<(String, SpecApp)> = HashSet::new();
        for (cfg, apps) in requests {
            let key = alone_key(cfg);
            for &app in apps {
                if seen.insert((key.clone(), app)) {
                    pairs.push((key.clone(), cfg.clone(), app));
                }
            }
        }
        let jobs: Vec<Job<f64>> = pairs
            .iter()
            .map(|(_, cfg, app)| {
                let cfg = cfg.clone();
                let app = *app;
                Job::new(format!("alone/{}", app.name()), move || {
                    alone_ipc(&cfg, app, lengths)
                })
            })
            .collect();
        let ipcs = run_grid(args, jobs);
        let map = pairs
            .into_iter()
            .zip(ipcs)
            .map(|((key, _, app), ipc)| ((key, app), ipc))
            .collect();
        AloneMap { map }
    }

    /// The alone IPC of `app` on `cfg`'s hardware.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of [`AloneMap::compute`].
    #[must_use]
    pub fn ipc(&self, cfg: &SystemConfig, app: SpecApp) -> f64 {
        *self
            .map
            .get(&(alone_key(cfg), app))
            .unwrap_or_else(|| panic!("alone IPC of {} not precomputed", app.name()))
    }

    /// Alone IPCs for every distinct app of a workload, in the shape
    /// [`noclat::weighted_speedup_of`] consumes.
    #[must_use]
    pub fn table(&self, cfg: &SystemConfig, apps: &[SpecApp]) -> HashMap<SpecApp, f64> {
        apps.iter().map(|&a| (a, self.ipc(cfg, a))).collect()
    }

    /// Number of distinct `(hardware, app)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries have been computed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---------------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------------

/// An ordered, dependency-free JSON value.
///
/// Object fields keep their insertion order, and all numeric formatting is
/// the standard library's deterministic shortest-roundtrip rendering, so
/// serializing the same value always yields the same bytes — the property
/// the `--jobs N` equivalence checks pin.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    Uint(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with explicit field order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Uint(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Uint(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Uint(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Builder for [`Json::Obj`] with ergonomic field chaining.
#[derive(Debug, Default)]
pub struct Obj(Vec<(String, Json)>);

impl Obj {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field.
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.0.push((key.into(), value.into()));
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Json {
    fn render(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    item.render(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\": ");
                    v.render(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }

    /// Serializes to a pretty-printed, deterministic JSON string (trailing
    /// newline included, as written to report files).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

/// JSON rendering of a latency histogram: the five-number summary plus the
/// non-empty PDF bins (center → fraction), in bin order.
#[must_use]
pub fn histogram_json(h: &noclat_sim::stats::Histogram) -> Json {
    let s = h.summary();
    let pdf: Vec<Json> = h
        .pdf_points()
        .iter()
        .filter(|(_, f)| *f > 0.0)
        .map(|&(center, frac)| {
            Obj::new()
                .field("center", center)
                .field("frac", frac)
                .build()
        })
        .collect();
    Obj::new()
        .field("count", s.count)
        .field("mean", s.mean)
        .field("p50", s.p50)
        .field("p90", s.p90)
        .field("p99", s.p99)
        .field("max", s.max)
        .field("pdf", Json::Arr(pdf))
        .build()
}

/// Standard envelope for a sweep's JSON report: the harness name, the seed
/// and simulation window it ran with, and the harness-specific body. Worker
/// count is deliberately excluded so reports are comparable across `--jobs`.
#[must_use]
pub fn report(name: &str, args: &SweepArgs, body: Json) -> Json {
    Obj::new()
        .field("harness", name)
        .field("seed", args.seed)
        .field("warmup", args.lengths.warmup)
        .field("measure", args.lengths.measure)
        .field("kernel", args.kernel.name())
        .field("results", body)
        .build()
}

/// Writes the report to `--json PATH` when requested (noting it on stderr).
/// Call at the end of every sweep binary.
pub fn finish(args: &SweepArgs, report: &Json) {
    if let Some(path) = &args.json {
        if let Err(e) = write_json_file(path, report) {
            eprintln!("error: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote JSON report to {}", path.display());
    }
}

/// Writes a JSON value to a file.
pub fn write_json_file(path: &Path, json: &Json) -> std::io::Result<()> {
    std::fs::write(path, json.to_json_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let (args, rest) = SweepArgs::parse_argv(&argv(&[])).unwrap();
        assert!(args.jobs >= 1);
        assert!(args.json.is_none());
        assert_eq!(args.lengths, RunLengths::standard());
        assert!(rest.is_empty());

        let (args, rest) = SweepArgs::parse_argv(&argv(&[
            "--jobs",
            "4",
            "--json",
            "/tmp/x.json",
            "--seed",
            "7",
            "quick",
            "--measure",
            "123",
            "--extra",
        ]))
        .unwrap();
        assert_eq!(args.jobs, 4);
        assert_eq!(args.json.as_deref(), Some(Path::new("/tmp/x.json")));
        assert_eq!(args.seed, 7);
        assert_eq!(args.lengths.warmup, RunLengths::quick().warmup);
        assert_eq!(args.lengths.measure, 123);
        assert_eq!(rest, vec!["--extra".to_string()]);
    }

    #[test]
    fn parse_rejects_bad_values() {
        assert!(SweepArgs::parse_argv(&argv(&["--jobs", "0"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--jobs"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--measure", "0"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--seed", "donkey"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--policy", "req=donkey"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--policy"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--kernel", "donkey"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--kernel"])).is_err());
        assert_eq!(
            SweepArgs::parse_argv(&argv(&["--help"])).unwrap_err(),
            "help"
        );
    }

    #[test]
    fn parse_policy_override_and_apply() {
        let (args, rest) =
            SweepArgs::parse_argv(&argv(&["--policy", "req=oldest-first,resp=static"])).unwrap();
        assert!(rest.is_empty());
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg.policy.request.as_deref(), Some("oldest-first"));
        assert_eq!(cfg.policy.response.as_deref(), Some("static"));
        cfg.validate().expect("override produces a valid config");
        // No --policy: configurations pass through untouched.
        let (args, _) = SweepArgs::parse_argv(&argv(&[])).unwrap();
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg, SystemConfig::baseline_32());
    }

    #[test]
    fn parse_kernel_override_and_apply() {
        let (args, rest) = SweepArgs::parse_argv(&argv(&["--kernel", "event"])).unwrap();
        assert!(rest.is_empty());
        assert_eq!(args.kernel, KernelKind::Event);
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg.kernel, KernelKind::Event);
        // No --kernel: configurations pass through untouched.
        let (args, _) = SweepArgs::parse_argv(&argv(&[])).unwrap();
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg, SystemConfig::baseline_32());
    }

    #[test]
    fn json_serialization_is_deterministic_and_escaped() {
        let j = Obj::new()
            .field("name", "fig\"09\"\n")
            .field("count", 3u64)
            .field("mean", 282.5)
            .field("whole", 2.0)
            .field("nan", f64::NAN)
            .field("flag", true)
            .field("cells", vec![1u64, 2, 3])
            .field("empty", Json::Arr(vec![]))
            .build();
        let a = j.to_json_string();
        assert_eq!(a, j.to_json_string());
        assert!(a.contains("\"fig\\\"09\\\"\\n\""));
        assert!(a.contains("\"mean\": 282.5"));
        assert!(a.contains("\"whole\": 2"));
        assert!(a.contains("\"nan\": null"));
        assert!(a.ends_with("}\n"));
        // Field order is insertion order, not alphabetical.
        assert!(a.find("name").unwrap() < a.find("count").unwrap());
    }

    #[test]
    fn alone_key_strips_schemes_but_keeps_hardware() {
        let base = SystemConfig::baseline_32();
        assert_eq!(
            alone_key(&base),
            alone_key(&base.clone().with_both_schemes())
        );
        // Policy selection is also contention-only: alone runs share a key.
        let mut with_policy = base.clone();
        with_policy.policy.request = Some("oldest-first".to_string());
        with_policy.policy.response = Some("static".to_string());
        assert_eq!(alone_key(&base), alone_key(&with_policy));
        let mut more_vcs = base.clone();
        more_vcs.noc.vcs_per_port = 8;
        assert_ne!(alone_key(&base), alone_key(&more_vcs));
        let mut other_seed = base.clone();
        other_seed.seed ^= 1;
        assert_ne!(alone_key(&base), alone_key(&other_seed));
        // Kernel selection never changes results, so it never splits keys.
        let mut event = base.clone();
        event.kernel = KernelKind::Event;
        assert_eq!(alone_key(&base), alone_key(&event));
    }
}
