//! Compatibility re-export of the sweep engine.
//!
//! The whole sweep orchestration layer — `SweepArgs`, the grid runners,
//! `AloneMap`, the `Json`/`CellCodec` serialization, exit codes, report
//! helpers — moved to the `noclat-engine` crate so the `sweepd` daemon and
//! future frontends can drive the same engine. Every path that used to
//! live here (`noclat_bench::sweep::X`) keeps working through this
//! re-export; new code should import `noclat_engine` directly.

pub use noclat_engine::*;
