//! Parallel sweep engine for the figure/table harnesses.
//!
//! Every binary in `src/bin/` describes its experiment as a *grid* of
//! independent jobs (one per workload × scheme × knob cell, or one per
//! replicate shard of a distribution measurement) and hands the grid to
//! [`run_grid`], which fans it out over `--jobs N` worker threads via
//! [`noclat_sim::pool`]. Determinism is preserved by construction:
//!
//! * each job is self-contained and seeded only from
//!   `(base seed, job index)` via [`job_seed`],
//! * results come back in job-index order regardless of scheduling,
//! * all rendering (text and JSON) happens after the grid completes, from
//!   the ordered results.
//!
//! Running the same sweep with `--jobs 1` and `--jobs 8` therefore produces
//! byte-identical reports; only the wall-clock time changes. Progress notes
//! go to stderr so stdout stays comparable across worker counts.
//!
//! The `--json PATH` flag writes a structured report through the in-tree
//! [`Json`] value type (field order is explicit, so serialization is
//! deterministic; no external serialization crates are involved).

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use noclat::{
    alone_ipc, AppLatency, Journal, KernelKind, LatencyTracker, PolicyConfig, PolicyOverride,
    RunLengths, SegmentRow, SimError, SystemConfig, TopologyOverride,
};
use noclat_analytic::AnalyticModel;
use noclat_noc::LoadPoint;
use noclat_sim::journal::{self, fnv1a64};
use noclat_sim::stats::{Histogram, RunningMean};
use noclat_workloads::SpecApp;

pub use noclat_sim::pool::{
    job_rng, job_seed, run_jobs, run_jobs_supervised, Job, JobCtx, RetryPolicy,
};

/// Process exit codes shared by every sweep binary, so CI and scripts can
/// tell failure classes apart without parsing stderr.
pub mod exit_code {
    /// Catch-all failure (IO errors, wedged drains without a watchdog…).
    pub const GENERIC: i32 = 1;
    /// Invalid arguments or configuration (also journal-resume mismatches).
    pub const CONFIG: i32 = 2;
    /// At least one sweep job panicked after exhausting its retries.
    pub const JOB_PANIC: i32 = 3;
    /// At least one sweep job exceeded `--job-timeout` after exhausting its
    /// retries (and none panicked — panics take precedence).
    pub const JOB_TIMEOUT: i32 = 4;
    /// The liveness watchdog reported violations (deadlock/starvation).
    pub const WATCHDOG: i32 = 5;
    /// `--prune` eliminated every cell of a non-empty grid: nothing was
    /// simulated, so a report of "zero cells, success" would be a lie.
    pub const PRUNED_EMPTY: i32 = 6;
}

/// Number of replicate shards the distribution harnesses (fig04/05/06/09/12)
/// split their measurement into. Each shard is a full, independently seeded
/// run; shard statistics merge exactly, so more shards mean both more
/// parallelism and more samples.
pub const DEFAULT_SHARDS: u64 = 8;

/// Command-line arguments shared by every sweep binary.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Worker threads for the job grid (`--jobs N`; defaults to the
    /// machine's available parallelism).
    pub jobs: usize,
    /// Where to write the JSON report (`--json PATH`), if anywhere.
    pub json: Option<PathBuf>,
    /// Base RNG seed for the sweep (`--seed N`); per-job seeds derive from
    /// it via [`job_seed`].
    pub seed: u64,
    /// Simulation window (`quick`/`--quick` shrink it; `--warmup N` and
    /// `--measure N` override individual components).
    pub lengths: RunLengths,
    /// Prioritization-policy overrides
    /// (`--policy req=<name>,resp=<name>,arb=<name>`), applied to every
    /// configuration the sweep builds via [`SweepArgs::apply_policy`].
    pub policy: PolicyOverride,
    /// Simulation kernel (`--kernel cycle|event`). Kernels are bit-identical
    /// by contract (the equivalence suite enforces it), so this only trades
    /// wall-clock time; reports are comparable across kernels.
    pub kernel: KernelKind,
    /// Fabric override (`--topology NAME[:PARAM=V,...]`), applied to every
    /// configuration the sweep builds via [`SweepArgs::apply_policy`]. Unlike
    /// `--kernel`, a topology change *does* change results, so it is part of
    /// the sweep fingerprint.
    pub topology: TopologyOverride,
    /// Journal path for durable checkpoint/resume (`--resume PATH`). Cells
    /// already present in the journal are restored instead of re-run; cells
    /// completing during this run are appended as they finish.
    pub resume: Option<PathBuf>,
    /// Per-job wall-clock deadline (`--job-timeout SECS`); overrunning jobs
    /// are cancelled cooperatively and reported as `JobTimeout`.
    pub job_timeout: Option<Duration>,
    /// Retries with exponential backoff for panicking/timing-out jobs
    /// (`--retries N`; default 0 = fail immediately).
    pub retries: u32,
    /// Two-tier search (`--prune off|analytic:top=K`): run the analytic
    /// latency model over the grid first and submit only the top-K cells
    /// (plus golden-pinned cells) to the cycle-accurate pool. Changes which
    /// cells *run*, never what a run cell contains, but is still part of
    /// the sweep fingerprint so a pruned journal never resumes an unpruned
    /// sweep (or vice versa).
    pub prune: PruneSpec,
}

/// The `--prune` strategy of a two-tier sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneSpec {
    /// Cycle-simulate every cell (the default).
    #[default]
    Off,
    /// Rank cells by the closed-form estimator (`noclat-analytic`) and
    /// keep the `top` cells with the lowest predicted mean latency, plus
    /// every golden-pinned cell and every cell the harness supplied no
    /// model inputs for.
    Analytic {
        /// Non-golden cells to keep.
        top: usize,
    },
}

impl PruneSpec {
    /// Parses `off` or `analytic:top=K`.
    pub fn parse(s: &str) -> Result<PruneSpec, String> {
        if s == "off" {
            return Ok(PruneSpec::Off);
        }
        if let Some(rest) = s.strip_prefix("analytic:top=") {
            let top = rest
                .parse()
                .map_err(|e| format!("--prune: top={rest}: {e}"))?;
            return Ok(PruneSpec::Analytic { top });
        }
        Err(format!(
            "--prune: unknown spec {s:?} (expected off or analytic:top=K)"
        ))
    }

    /// Whether any pruning strategy is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        *self != PruneSpec::Off
    }
}

impl std::fmt::Display for PruneSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PruneSpec::Off => f.write_str("off"),
            PruneSpec::Analytic { top } => write!(f, "analytic:top={top}"),
        }
    }
}

/// Flags accepted by [`SweepArgs::parse`], for inclusion in usage strings.
pub const SWEEP_USAGE: &str = "[--jobs N] [--json PATH] [--seed N] [--warmup N] [--measure N] \
     [--policy req=NAME,resp=NAME,arb=NAME] [--kernel cycle|event] \
     [--topology mesh|torus|cmesh|express[:c=N,skip=N,mc=corner|edge|center]] \
     [--resume PATH] [--job-timeout SECS] [--retries N] \
     [--prune off|analytic:top=K] [quick]";

impl SweepArgs {
    fn defaults() -> Self {
        SweepArgs {
            jobs: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            json: None,
            seed: SystemConfig::baseline_32().seed,
            lengths: RunLengths::standard(),
            policy: PolicyOverride::default(),
            kernel: KernelKind::default(),
            topology: TopologyOverride::default(),
            resume: None,
            job_timeout: None,
            retries: 0,
            prune: PruneSpec::Off,
        }
    }

    /// Parses `std::env::args`, accepting only the shared sweep flags.
    ///
    /// Exits with status 2 (printing `usage`) on an unknown argument, and
    /// with status 0 on `--help`.
    #[must_use]
    pub fn parse(usage: &str) -> SweepArgs {
        let (args, rest) = Self::parse_with_rest(usage);
        if let Some(unknown) = rest.first() {
            eprintln!("error: unknown argument {unknown}");
            eprintln!("usage: {usage}");
            std::process::exit(2);
        }
        args
    }

    /// Parses `std::env::args`, returning unrecognized arguments for the
    /// binary to interpret (used by `faultsim`/`simulate`, which add their
    /// own flags on top of the shared set).
    #[must_use]
    pub fn parse_with_rest(usage: &str) -> (SweepArgs, Vec<String>) {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_argv(&argv) {
            Ok(pair) => pair,
            Err(e) => {
                let help = e == "help";
                if !help {
                    eprintln!("error: {e}");
                }
                eprintln!("usage: {usage}");
                std::process::exit(if help { 0 } else { 2 });
            }
        }
    }

    /// Pure parsing core (testable without process state).
    pub fn parse_argv(argv: &[String]) -> Result<(SweepArgs, Vec<String>), String> {
        let mut args = Self::defaults();
        let mut quick = std::env::var("NOCLAT_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut warmup_override = None;
        let mut measure_override = None;
        let mut rest = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].as_str();
            let value = || -> Result<&String, String> {
                argv.get(i + 1)
                    .ok_or_else(|| format!("{key} needs a value"))
            };
            match key {
                "--jobs" => {
                    args.jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?;
                    if args.jobs == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    i += 2;
                }
                "--json" => {
                    args.json = Some(PathBuf::from(value()?));
                    i += 2;
                }
                "--seed" => {
                    args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?;
                    i += 2;
                }
                "--warmup" => {
                    warmup_override = Some(value()?.parse().map_err(|e| format!("--warmup: {e}"))?);
                    i += 2;
                }
                "--measure" => {
                    let m: u64 = value()?.parse().map_err(|e| format!("--measure: {e}"))?;
                    if m == 0 {
                        return Err("--measure must be at least 1 cycle".into());
                    }
                    measure_override = Some(m);
                    i += 2;
                }
                "--policy" => {
                    // PolicyOverride::parse already prefixes its errors
                    // with "--policy:".
                    args.policy = PolicyOverride::parse(value()?)?;
                    i += 2;
                }
                "--kernel" => {
                    // KernelKind::parse already prefixes its errors with
                    // "--kernel:".
                    args.kernel = KernelKind::parse(value()?)?;
                    i += 2;
                }
                "--topology" => {
                    // TopologyOverride::parse already prefixes its errors
                    // with "--topology:".
                    args.topology = TopologyOverride::parse(value()?)?;
                    i += 2;
                }
                "--resume" => {
                    args.resume = Some(PathBuf::from(value()?));
                    i += 2;
                }
                "--job-timeout" => {
                    let secs: f64 = value()?
                        .parse()
                        .map_err(|e| format!("--job-timeout: {e}"))?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err("--job-timeout must be a positive number of seconds".into());
                    }
                    args.job_timeout = Some(Duration::from_secs_f64(secs));
                    i += 2;
                }
                "--retries" => {
                    args.retries = value()?.parse().map_err(|e| format!("--retries: {e}"))?;
                    i += 2;
                }
                "--prune" => {
                    // PruneSpec::parse already prefixes its errors with
                    // "--prune:".
                    args.prune = PruneSpec::parse(value()?)?;
                    i += 2;
                }
                "quick" | "--quick" => {
                    quick = true;
                    i += 1;
                }
                "--help" | "-h" => return Err("help".into()),
                _ => {
                    rest.push(argv[i].clone());
                    i += 1;
                }
            }
        }
        if quick {
            args.lengths = RunLengths::quick();
        }
        if let Some(w) = warmup_override {
            args.lengths.warmup = w;
        }
        if let Some(m) = measure_override {
            args.lengths.measure = m;
        }
        Ok((args, rest))
    }

    /// Applies this sweep's `--policy`, `--kernel` and `--topology`
    /// overrides to a configuration the harness is about to run. Call on
    /// every cell of the grid so the overrides reach scheme variants and
    /// knob sweeps alike; a sweep run without any of the flags is untouched.
    pub fn apply_policy(&self, cfg: &mut SystemConfig) {
        self.policy.apply(cfg);
        cfg.kernel = self.kernel;
        self.topology.apply(cfg);
        // A `--topology` override can produce a config the grid can't
        // satisfy (a concentration that doesn't tile it, a torus without
        // dateline VCs). That's a usage error, not a cell panic — surface
        // the typed ConfigError and exit before any cell runs.
        if !self.topology.is_empty() {
            if let Err(e) = cfg.validate() {
                eprintln!("error: --topology: {e}");
                std::process::exit(exit_code::CONFIG);
            }
        }
    }

    /// The pool deadline/retry budget these arguments request.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            timeout: self.job_timeout,
            retries: self.retries,
            ..RetryPolicy::default()
        }
    }
}

/// Fingerprint of everything that determines a sweep's *results*: seed,
/// simulation window, policy overrides, kernel and topology override.
/// Arguments that only affect execution (worker count, output paths,
/// deadlines, retries) are deliberately excluded — a journal written with
/// `--jobs 8` resumes fine under `--jobs 1`, and a deadline changes which
/// cells *complete*, never what a completed cell contains.
#[must_use]
pub fn sweep_fingerprint(args: &SweepArgs) -> u64 {
    let mut text = format!(
        "seed={} warmup={} measure={} policy={:?} kernel={} topology={:?}",
        args.seed,
        args.lengths.warmup,
        args.lengths.measure,
        args.policy,
        args.kernel.name(),
        args.topology,
    );
    // Pruning decides which cells exist, so a pruned journal must never
    // satisfy an unpruned resume. Appended only when enabled to keep every
    // pre-pruning journal's fingerprint valid.
    if args.prune.enabled() {
        text.push_str(&format!(" prune={}", args.prune));
    }
    fnv1a64(text.as_bytes())
}

/// Content address of one sweep cell: the sweep fingerprint combined with
/// the cell's label (labels are unique within a harness by construction).
#[must_use]
pub fn job_key(fingerprint: u64, label: &str) -> u64 {
    fnv1a64(format!("{fingerprint:016x}/{label}").as_bytes())
}

/// Runs a job grid under the sweep's worker budget and returns results in
/// job order, aborting the process with a per-job diagnostic if any job
/// failed.
///
/// The abort path reports *every* failing cell as a quarantine list (a
/// panicking cell does not hide its siblings' outcomes) and exits with the
/// most severe applicable [`exit_code`]: panics beat timeouts beat the
/// generic failure code. A journal problem (`--resume` mismatch, IO
/// failure) is a usage error and exits with [`exit_code::CONFIG`].
#[must_use]
pub fn run_grid<T: Send + CellCodec>(args: &SweepArgs, jobs: Vec<Job<T>>) -> Vec<T> {
    // A harness that fans out through this entry point has no model inputs
    // per cell; accepting `--prune` here would silently run everything.
    if args.prune.enabled() {
        eprintln!("error: this binary does not support --prune");
        std::process::exit(exit_code::CONFIG);
    }
    let results = match try_run_grid(args, jobs) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_code::CONFIG);
        }
    };
    let mut quarantined = Vec::new();
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(e) => quarantined.push(e),
        }
    }
    if !quarantined.is_empty() {
        eprintln!("sweep: {} cell(s) quarantined:", quarantined.len());
        for e in &quarantined {
            eprintln!("  error: {e}");
        }
        let code = if quarantined
            .iter()
            .any(|e| matches!(e, SimError::JobPanicked { .. }))
        {
            exit_code::JOB_PANIC
        } else if quarantined
            .iter()
            .any(|e| matches!(e, SimError::JobTimeout { .. }))
        {
            exit_code::JOB_TIMEOUT
        } else {
            exit_code::GENERIC
        };
        std::process::exit(code);
    }
    out
}

/// Like [`run_grid`], but surfaces failures as values instead of aborting
/// (the library entry point the tests drive): the outer `Err` is a journal
/// problem that prevented the sweep from running at all, the inner ones are
/// quarantined cells.
///
/// Every job gets a content address (`[config <hash>]` in error reports,
/// the record key in the journal). With `--resume`, cells whose records are
/// already journaled are decoded instead of re-run — the codec roundtrip is
/// exact by construction, so resumed output is byte-identical — and each
/// cell completing in this run is appended (and flushed) the moment it
/// finishes, making progress durable against SIGKILL.
///
/// # Errors
///
/// [`SimError::Journal`] when the `--resume` journal cannot be opened,
/// belongs to a sweep with different arguments, or is not a journal at all.
pub fn try_run_grid<T: Send + CellCodec>(
    args: &SweepArgs,
    jobs: Vec<Job<T>>,
) -> Result<Vec<Result<T, SimError>>, SimError> {
    let fingerprint = sweep_fingerprint(args);
    let keys: Vec<u64> = jobs
        .iter()
        .map(|j| job_key(fingerprint, j.label()))
        .collect();
    let jobs: Vec<Job<T>> = jobs
        .into_iter()
        .zip(&keys)
        .map(|(j, key)| j.config_hash(format!("{key:016x}")))
        .collect();
    let n = jobs.len();
    let policy = args.retry_policy();

    let Some(path) = &args.resume else {
        if n > 1 {
            eprintln!("sweep: {} jobs on {} worker(s)", n, args.jobs.clamp(1, n));
        }
        return Ok(run_jobs_supervised(args.jobs, jobs, &policy, None));
    };

    let (journal, records) = Journal::open(path, fingerprint)?;
    let cache = journal::as_map(records);
    // A record that fails to decode (format drift, hand-edited file) is not
    // an error: the cell is simply recomputed and its record rewritten.
    let mut slots: Vec<Option<Result<T, SimError>>> = keys
        .iter()
        .map(|key| {
            let payload = cache.get(key)?;
            let value = T::decode_cell(&Json::parse(payload).ok()?)?;
            Some(Some(Ok(value)))
        })
        .map(Option::flatten)
        .collect();
    let pending: Vec<(usize, Job<T>)> = jobs
        .into_iter()
        .enumerate()
        .filter(|(i, _)| slots[*i].is_none())
        .collect();
    let resumed = n - pending.len();
    if resumed > 0 {
        eprintln!(
            "sweep: resumed {resumed} of {n} cell(s) from {}",
            path.display()
        );
    }
    if pending.len() > 1 {
        eprintln!(
            "sweep: {} jobs on {} worker(s)",
            pending.len(),
            args.jobs.clamp(1, pending.len())
        );
    }
    let indices: Vec<usize> = pending.iter().map(|(i, _)| *i).collect();
    let pending_jobs: Vec<Job<T>> = pending.into_iter().map(|(_, j)| j).collect();
    let journal = Mutex::new(journal);
    let observer = |pi: usize, r: &Result<T, SimError>| {
        if let Ok(v) = r {
            let payload = v.encode_cell().to_compact_string();
            let mut journal = journal.lock().expect("journal lock");
            if let Err(e) = journal.append(keys[indices[pi]], &payload) {
                // Losing durability degrades resume, not this run's results.
                eprintln!("warning: {e}");
            }
        }
    };
    let results = run_jobs_supervised(args.jobs, pending_jobs, &policy, Some(&observer));
    for (pi, result) in results.into_iter().enumerate() {
        let i = indices[pi];
        // Errors report the cell's position in the full grid, not in the
        // pending subset the pool happened to run.
        let result = result.map_err(|mut e| {
            match &mut e {
                SimError::JobPanicked { index, .. } | SimError::JobTimeout { index, .. } => {
                    *index = i;
                }
                _ => {}
            }
            e
        });
        slots[i] = Some(result);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every cell is cached or computed"))
        .collect())
}

/// Model inputs the analytic pruning pre-pass needs for one cell: the
/// exact configuration the job will simulate and the per-tile application
/// placement. `golden` pins the cell past any pruning (regression anchors
/// must always run).
#[derive(Debug, Clone)]
pub struct PruneInfo {
    /// The cell's full configuration (after every override is applied —
    /// the same value the job's closure captured).
    pub cfg: SystemConfig,
    /// Per-tile application placement, exactly as `run_mix` assigns it.
    pub apps: Vec<SpecApp>,
    /// Never prune this cell (golden-pinned regression anchor).
    pub golden: bool,
}

/// One cell of a pruned grid: the cycle-accurate job plus (optionally) the
/// model inputs that let the pre-pass rank it. Cells without `prune`
/// metadata are never pruned — the estimator cannot rank what it cannot
/// model.
pub struct GridCell<T> {
    /// The cycle-accurate job.
    pub job: Job<T>,
    /// Model inputs for the pruning pre-pass.
    pub prune: Option<PruneInfo>,
}

/// What a pruned grid produced, aligned with the input cells.
pub struct PruneOutcome<T> {
    /// Per-cell outcome: `None` when the pre-pass pruned the cell,
    /// otherwise the cycle-accurate result (or its quarantined error).
    pub results: Vec<Option<Result<T, SimError>>>,
    /// The estimator's predicted mean latency per cell (`None` for cells
    /// without model inputs, or when pruning is off).
    pub predicted: Vec<Option<f64>>,
    /// How many cells were submitted to the cycle-accurate pool.
    pub kept: usize,
}

/// Two-tier grid execution: with `--prune analytic:top=K`, the closed-form
/// estimator ranks every cell that supplied [`PruneInfo`] and only the K
/// lowest-predicted-latency cells — plus all golden-pinned cells and all
/// cells without model inputs — reach the cycle-accurate pool. Surviving
/// cells run through [`try_run_grid`] with their original jobs untouched,
/// so their results are byte-identical to an unpruned run's; the pruning
/// spec is part of the sweep fingerprint, so `--resume` journals of pruned
/// and unpruned sweeps never mix.
///
/// With `--prune off` every cell runs and no prediction is computed.
///
/// # Errors
///
/// [`SimError::Journal`] exactly as [`try_run_grid`].
pub fn try_run_pruned_grid<T: Send + CellCodec>(
    args: &SweepArgs,
    cells: Vec<GridCell<T>>,
) -> Result<PruneOutcome<T>, SimError> {
    let n = cells.len();
    let PruneSpec::Analytic { top } = args.prune else {
        let jobs: Vec<Job<T>> = cells.into_iter().map(|c| c.job).collect();
        let results = try_run_grid(args, jobs)?;
        return Ok(PruneOutcome {
            results: results.into_iter().map(Some).collect(),
            predicted: vec![None; n],
            kept: n,
        });
    };

    // Tier 1: rank by the analytic estimator. A cell whose configuration
    // the model rejects is kept conservatively (the cycle pool will report
    // the config error properly).
    let mut predicted: Vec<Option<f64>> = Vec::with_capacity(n);
    for cell in &cells {
        let p = cell.prune.as_ref().and_then(|info| {
            let model = AnalyticModel::new(&info.cfg, &info.apps).ok()?;
            let report = model
                .with_lengths(args.lengths.warmup, args.lengths.measure)
                .evaluate();
            Some(report.mean_latency)
        });
        predicted.push(p);
    }
    let mut ranked: Vec<(usize, f64)> = predicted
        .iter()
        .enumerate()
        .filter(|(i, _)| cells[*i].prune.as_ref().is_some_and(|info| !info.golden))
        .filter_map(|(i, p)| p.map(|p| (i, p)))
        .collect();
    // Ascending predicted latency; grid order breaks ties, so the
    // selection is deterministic.
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    let mut keep = vec![false; n];
    for (i, cell) in cells.iter().enumerate() {
        match &cell.prune {
            None => keep[i] = true,
            Some(info) if info.golden => keep[i] = true,
            Some(_) => {}
        }
    }
    for &(i, _) in ranked.iter().take(top) {
        keep[i] = true;
    }
    let kept = keep.iter().filter(|k| **k).count();
    eprintln!("sweep: analytic pre-pass kept {kept} of {n} cell(s) (top={top} plus pinned)");

    // Tier 2: the surviving jobs, bit-identical to an unpruned run.
    let mut survivors: Vec<Job<T>> = Vec::with_capacity(kept);
    let mut indices = Vec::with_capacity(kept);
    for (i, cell) in cells.into_iter().enumerate() {
        if keep[i] {
            indices.push(i);
            survivors.push(cell.job);
        }
    }
    let sub = try_run_grid(args, survivors)?;
    let mut results: Vec<Option<Result<T, SimError>>> = (0..n).map(|_| None).collect();
    for (si, r) in sub.into_iter().enumerate() {
        let i = indices[si];
        // Errors report the cell's position in the full grid.
        let r = r.map_err(|mut e| {
            match &mut e {
                SimError::JobPanicked { index, .. } | SimError::JobTimeout { index, .. } => {
                    *index = i;
                }
                _ => {}
            }
            e
        });
        results[i] = Some(r);
    }
    Ok(PruneOutcome {
        results,
        predicted,
        kept,
    })
}

/// A pruned grid after quarantine handling: every surviving cell's value,
/// aligned with the input cells (`None` = pruned away).
pub struct PrunedResults<T> {
    /// Per-cell value; `None` when the pre-pass pruned the cell.
    pub results: Vec<Option<T>>,
    /// The estimator's predicted mean latency per cell.
    pub predicted: Vec<Option<f64>>,
    /// How many cells ran cycle-accurately.
    pub kept: usize,
}

/// Like [`run_grid`] for pruned grids: aborts on journal problems and
/// quarantined cells with the same exit codes, and exits with
/// [`exit_code::PRUNED_EMPTY`] when the pre-pass eliminated every cell of
/// a non-empty grid (a sweep that simulated nothing must not look like a
/// success).
#[must_use]
pub fn run_pruned_grid<T: Send + CellCodec>(
    args: &SweepArgs,
    cells: Vec<GridCell<T>>,
) -> PrunedResults<T> {
    let n = cells.len();
    let outcome = match try_run_pruned_grid(args, cells) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_code::CONFIG);
        }
    };
    if outcome.kept == 0 && n > 0 {
        eprintln!(
            "error: --prune {} eliminated all {n} cell(s); nothing was simulated",
            args.prune
        );
        std::process::exit(exit_code::PRUNED_EMPTY);
    }
    let quarantined: Vec<&SimError> = outcome
        .results
        .iter()
        .flatten()
        .filter_map(|r| r.as_ref().err())
        .collect();
    if !quarantined.is_empty() {
        eprintln!("sweep: {} cell(s) quarantined:", quarantined.len());
        for e in &quarantined {
            eprintln!("  error: {e}");
        }
        let code = if quarantined
            .iter()
            .any(|e| matches!(e, SimError::JobPanicked { .. }))
        {
            exit_code::JOB_PANIC
        } else if quarantined
            .iter()
            .any(|e| matches!(e, SimError::JobTimeout { .. }))
        {
            exit_code::JOB_TIMEOUT
        } else {
            exit_code::GENERIC
        };
        std::process::exit(code);
    }
    PrunedResults {
        results: outcome
            .results
            .into_iter()
            .map(|r| r.map(|v| v.expect("quarantine exit handled errors")))
            .collect(),
        predicted: outcome.predicted,
        kept: outcome.kept,
    }
}

/// Fans `shards` replicate runs of one measurement out to the pool: shard
/// `s` calls `make(s, job_seed(args.seed, s))` and the results come back in
/// shard order, ready to be merged. `make` must be deterministic in its
/// arguments.
#[must_use]
pub fn run_shards<T, F>(args: &SweepArgs, label: &str, shards: u64, make: F) -> Vec<T>
where
    T: Send + CellCodec,
    F: Fn(u64, u64) -> T + Send + Sync + 'static,
{
    let make = Arc::new(make);
    let jobs: Vec<Job<T>> = (0..shards)
        .map(|s| {
            let make = Arc::clone(&make);
            let seed = job_seed(args.seed, s);
            Job::new(format!("{label}/shard-{s}"), move || make(s, seed))
        })
        .collect();
    run_grid(args, jobs)
}

/// A table of alone-run IPCs (the weighted-speedup denominators), computed
/// as its own parallel phase so the mix-run grid never recomputes them.
///
/// Entries are keyed by the *full* hardware configuration (schemes
/// stripped, since alone runs never contend) plus the application, so
/// distinct hardware points — different meshes, VC counts, schedulers,
/// pipelines — never alias each other's denominators.
#[derive(Debug, Default)]
pub struct AloneMap {
    map: HashMap<(String, SpecApp), f64>,
}

/// Cache key of a hardware configuration for alone-run purposes: the Debug
/// rendering of the config with both schemes disabled (alone runs are
/// scheme-independent by construction — there is nothing to contend with).
#[must_use]
pub fn alone_key(cfg: &SystemConfig) -> String {
    let mut base = cfg.clone();
    base.scheme1.enabled = false;
    base.scheme2.enabled = false;
    base.policy = PolicyConfig::default();
    // Kernels are bit-identical, so cycle- and event-kernel sweeps share
    // their alone denominators (alone_ipc pins the default kernel too).
    base.kernel = KernelKind::default();
    format!("{base:?}")
}

impl AloneMap {
    /// Computes alone IPCs for every distinct `(hardware, app)` pair in
    /// `requests`, one pool job per pair.
    #[must_use]
    pub fn compute(args: &SweepArgs, requests: &[(SystemConfig, Vec<SpecApp>)]) -> AloneMap {
        let lengths = args.lengths;
        let mut pairs: Vec<(String, SystemConfig, SpecApp)> = Vec::new();
        let mut seen: HashSet<(String, SpecApp)> = HashSet::new();
        for (cfg, apps) in requests {
            let key = alone_key(cfg);
            for &app in apps {
                if seen.insert((key.clone(), app)) {
                    pairs.push((key.clone(), cfg.clone(), app));
                }
            }
        }
        let jobs: Vec<Job<f64>> = pairs
            .iter()
            .map(|(key, cfg, app)| {
                let cfg = cfg.clone();
                let app = *app;
                // The hardware key disambiguates the label: the same app on
                // two hardware points must never share a journal address.
                let hw = fnv1a64(key.as_bytes());
                Job::new(format!("alone/{}/{hw:016x}", app.name()), move || {
                    alone_ipc(&cfg, app, lengths)
                })
            })
            .collect();
        let ipcs = run_grid(args, jobs);
        let map = pairs
            .into_iter()
            .zip(ipcs)
            .map(|((key, _, app), ipc)| ((key, app), ipc))
            .collect();
        AloneMap { map }
    }

    /// The alone IPC of `app` on `cfg`'s hardware.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of [`AloneMap::compute`].
    #[must_use]
    pub fn ipc(&self, cfg: &SystemConfig, app: SpecApp) -> f64 {
        *self
            .map
            .get(&(alone_key(cfg), app))
            .unwrap_or_else(|| panic!("alone IPC of {} not precomputed", app.name()))
    }

    /// Alone IPCs for every distinct app of a workload, in the shape
    /// [`noclat::weighted_speedup_of`] consumes.
    #[must_use]
    pub fn table(&self, cfg: &SystemConfig, apps: &[SpecApp]) -> HashMap<SpecApp, f64> {
        apps.iter().map(|&a| (a, self.ipc(cfg, a))).collect()
    }

    /// Number of distinct `(hardware, app)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries have been computed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---------------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------------

/// An ordered, dependency-free JSON value.
///
/// Object fields keep their insertion order, and all numeric formatting is
/// the standard library's deterministic shortest-roundtrip rendering, so
/// serializing the same value always yields the same bytes — the property
/// the `--jobs N` equivalence checks pin.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    Uint(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with explicit field order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Uint(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Uint(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Uint(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Builder for [`Json::Obj`] with ergonomic field chaining.
#[derive(Debug, Default)]
pub struct Obj(Vec<(String, Json)>);

impl Obj {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field.
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.0.push((key.into(), value.into()));
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Json {
    fn render(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    item.render(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\": ");
                    v.render(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }

    /// Serializes to a pretty-printed, deterministic JSON string (trailing
    /// newline included, as written to report files).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes to a single-line, whitespace-free string (the journal's
    /// payload format — record payloads must not contain newlines).
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.render_compact(&mut out);
        out
    }

    fn render_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.render_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the inverse of the serializers, used to
    /// decode journal payloads).
    ///
    /// Unsigned integer literals parse as [`Json::Uint`], negative integers
    /// as [`Json::Int`], anything fractional or exponential as
    /// [`Json::Num`] — matching what the serializers emit, so
    /// `parse(render(x)) == x` for every value the codec produces.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Recursive-descent parser over raw bytes (JSON structure is ASCII; string
/// contents pass through as UTF-8).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut chars = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|e| format!("invalid UTF-8 in string: {e}"))?
            .char_indices();
        while let Some((off, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += off + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars
                                .next()
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            code = code * 16
                                + h.to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {h:?} in \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u{code:04x} escape"))?,
                        );
                    }
                    other => {
                        return Err(format!("bad escape {:?}", other.map(|(_, c)| c)));
                    }
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if fractional {
            text.parse()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else if text.starts_with('-') {
            text.parse()
                .map(Json::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse()
                .map(Json::Uint)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

// ---------------------------------------------------------------------------
// Cell codec: lossless (de)serialization of grid results for the journal
// ---------------------------------------------------------------------------

/// Lossless serialization of one grid cell's result, used by the `--resume`
/// journal. The contract is exactness: `decode_cell(encode_cell(x)) == x`
/// bit-for-bit, so a resumed sweep renders byte-identical reports. Floats
/// are therefore encoded as their IEEE-754 bit patterns ([`f64::to_bits`]
/// as [`Json::Uint`]), never as decimal text.
///
/// `decode_cell` returns `None` on any shape mismatch — the sweep layer
/// treats an undecodable record as absent and recomputes the cell.
pub trait CellCodec: Sized {
    /// Encodes the cell value as a JSON tree.
    fn encode_cell(&self) -> Json;
    /// Decodes a cell value; `None` if `json` does not have the right shape.
    fn decode_cell(json: &Json) -> Option<Self>;
}

fn dec_u64(json: &Json) -> Option<u64> {
    match json {
        Json::Uint(v) => Some(*v),
        _ => None,
    }
}

impl CellCodec for u64 {
    fn encode_cell(&self) -> Json {
        Json::Uint(*self)
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        dec_u64(json)
    }
}

impl CellCodec for u32 {
    fn encode_cell(&self) -> Json {
        Json::Uint(u64::from(*self))
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        dec_u64(json)?.try_into().ok()
    }
}

impl CellCodec for usize {
    fn encode_cell(&self) -> Json {
        Json::Uint(*self as u64)
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        dec_u64(json)?.try_into().ok()
    }
}

impl CellCodec for i64 {
    fn encode_cell(&self) -> Json {
        Json::Int(*self)
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        // Non-negative integers parse back as Uint; accept both renderings.
        match json {
            Json::Int(v) => Some(*v),
            Json::Uint(v) => (*v).try_into().ok(),
            _ => None,
        }
    }
}

impl CellCodec for bool {
    fn encode_cell(&self) -> Json {
        Json::Bool(*self)
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        match json {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl CellCodec for f64 {
    fn encode_cell(&self) -> Json {
        Json::Uint(self.to_bits())
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        dec_u64(json).map(f64::from_bits)
    }
}

impl CellCodec for String {
    fn encode_cell(&self) -> Json {
        Json::Str(self.clone())
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        match json {
            Json::Str(s) => Some(s.clone()),
            _ => None,
        }
    }
}

impl<T: CellCodec> CellCodec for Vec<T> {
    fn encode_cell(&self) -> Json {
        Json::Arr(self.iter().map(CellCodec::encode_cell).collect())
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        match json {
            Json::Arr(items) => items.iter().map(T::decode_cell).collect(),
            _ => None,
        }
    }
}

impl CellCodec for [u64; 5] {
    fn encode_cell(&self) -> Json {
        Json::Arr(self.iter().map(|&v| Json::Uint(v)).collect())
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        Vec::<u64>::decode_cell(json)?.try_into().ok()
    }
}

/// Tuples encode positionally as arrays.
macro_rules! tuple_codec {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: CellCodec),+> CellCodec for ($($name,)+) {
            fn encode_cell(&self) -> Json {
                Json::Arr(vec![$(self.$idx.encode_cell()),+])
            }
            fn decode_cell(json: &Json) -> Option<Self> {
                let Json::Arr(items) = json else { return None };
                let mut it = items.iter();
                let out = ($($name::decode_cell(it.next()?)?,)+);
                if it.next().is_some() {
                    return None;
                }
                Some(out)
            }
        }
    };
}

tuple_codec!(A: 0, B: 1);
tuple_codec!(A: 0, B: 1, C: 2);
tuple_codec!(A: 0, B: 1, C: 2, D: 3);
tuple_codec!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_codec!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_codec!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

impl CellCodec for Histogram {
    fn encode_cell(&self) -> Json {
        Json::Arr(vec![
            Json::Uint(self.bin_width()),
            self.bins().to_vec().encode_cell(),
            Json::Uint(self.count()),
            Json::Uint(self.sum()),
            Json::Uint(self.max()),
        ])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (bin_width, bins, count, sum, max) =
            <(u64, Vec<u64>, u64, u64, u64)>::decode_cell(json)?;
        // Guard from_raw_parts' panics: a record failing these is corrupt
        // and the cell recomputes.
        if bin_width == 0 || bins.is_empty() {
            return None;
        }
        Some(Histogram::from_raw_parts(bin_width, bins, count, sum, max))
    }
}

impl CellCodec for RunningMean {
    fn encode_cell(&self) -> Json {
        Json::Arr(vec![Json::Uint(self.count()), self.sum().encode_cell()])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (count, sum) = <(u64, f64)>::decode_cell(json)?;
        Some(RunningMean::from_parts(count, sum))
    }
}

impl CellCodec for SegmentRow {
    fn encode_cell(&self) -> Json {
        Json::Arr(vec![
            Json::Uint(self.count),
            Json::Arr(self.sums.iter().map(|s| s.encode_cell()).collect()),
        ])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (count, sums) = <(u64, Vec<f64>)>::decode_cell(json)?;
        Some(SegmentRow {
            count,
            sums: sums.try_into().ok()?,
        })
    }
}

impl CellCodec for AppLatency {
    fn encode_cell(&self) -> Json {
        Json::Arr(vec![
            self.total.encode_cell(),
            self.so_far.encode_cell(),
            self.rows().to_vec().encode_cell(),
        ])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (total, so_far, rows) = <(Histogram, Histogram, Vec<SegmentRow>)>::decode_cell(json)?;
        // from_parts asserts the standard geometry; pre-check so a corrupt
        // record recomputes instead of panicking.
        if rows.len() != AppLatency::empty().rows().len() {
            return None;
        }
        Some(AppLatency::from_parts(total, so_far, rows))
    }
}

impl CellCodec for LatencyTracker {
    fn encode_cell(&self) -> Json {
        let apps: Vec<AppLatency> = (0..self.num_apps()).map(|c| self.app(c).clone()).collect();
        let (expedited, normal) = self.return_legs();
        Json::Arr(vec![
            apps.encode_cell(),
            expedited.encode_cell(),
            normal.encode_cell(),
        ])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (apps, expedited, normal) =
            <(Vec<AppLatency>, RunningMean, RunningMean)>::decode_cell(json)?;
        Some(LatencyTracker::from_parts(apps, expedited, normal))
    }
}

impl CellCodec for LoadPoint {
    fn encode_cell(&self) -> Json {
        Json::Arr(vec![
            self.offered_load.encode_cell(),
            Json::Uint(self.delivered),
            self.avg_latency.encode_cell(),
            self.backlog.encode_cell(),
        ])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (offered_load, delivered, avg_latency, backlog) =
            <(f64, u64, f64, usize)>::decode_cell(json)?;
        Some(LoadPoint {
            offered_load,
            delivered,
            avg_latency,
            backlog,
        })
    }
}

/// JSON rendering of a latency histogram: the five-number summary plus the
/// non-empty PDF bins (center → fraction), in bin order.
#[must_use]
pub fn histogram_json(h: &noclat_sim::stats::Histogram) -> Json {
    let s = h.summary();
    let pdf: Vec<Json> = h
        .pdf_points()
        .iter()
        .filter(|(_, f)| *f > 0.0)
        .map(|&(center, frac)| {
            Obj::new()
                .field("center", center)
                .field("frac", frac)
                .build()
        })
        .collect();
    Obj::new()
        .field("count", s.count)
        .field("mean", s.mean)
        .field("p50", s.p50)
        .field("p90", s.p90)
        .field("p99", s.p99)
        .field("max", s.max)
        .field("pdf", Json::Arr(pdf))
        .build()
}

/// Standard envelope for a sweep's JSON report: the harness name, the seed
/// and simulation window it ran with, and the harness-specific body. Worker
/// count is deliberately excluded so reports are comparable across `--jobs`.
#[must_use]
pub fn report(name: &str, args: &SweepArgs, body: Json) -> Json {
    Obj::new()
        .field("harness", name)
        .field("seed", args.seed)
        .field("warmup", args.lengths.warmup)
        .field("measure", args.lengths.measure)
        .field("kernel", args.kernel.name())
        .field("results", body)
        .build()
}

/// Writes the report to `--json PATH` when requested (noting it on stderr).
/// Call at the end of every sweep binary.
pub fn finish(args: &SweepArgs, report: &Json) {
    if let Some(path) = &args.json {
        if let Err(e) = write_json_file(path, report) {
            eprintln!("error: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote JSON report to {}", path.display());
    }
}

/// Writes a JSON value to a file.
pub fn write_json_file(path: &Path, json: &Json) -> std::io::Result<()> {
    std::fs::write(path, json.to_json_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let (args, rest) = SweepArgs::parse_argv(&argv(&[])).unwrap();
        assert!(args.jobs >= 1);
        assert!(args.json.is_none());
        assert_eq!(args.lengths, RunLengths::standard());
        assert!(rest.is_empty());

        let (args, rest) = SweepArgs::parse_argv(&argv(&[
            "--jobs",
            "4",
            "--json",
            "/tmp/x.json",
            "--seed",
            "7",
            "quick",
            "--measure",
            "123",
            "--extra",
        ]))
        .unwrap();
        assert_eq!(args.jobs, 4);
        assert_eq!(args.json.as_deref(), Some(Path::new("/tmp/x.json")));
        assert_eq!(args.seed, 7);
        assert_eq!(args.lengths.warmup, RunLengths::quick().warmup);
        assert_eq!(args.lengths.measure, 123);
        assert_eq!(rest, vec!["--extra".to_string()]);
    }

    #[test]
    fn parse_rejects_bad_values() {
        assert!(SweepArgs::parse_argv(&argv(&["--jobs", "0"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--jobs"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--measure", "0"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--seed", "donkey"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--policy", "req=donkey"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--policy"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--kernel", "donkey"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--kernel"])).is_err());
        assert_eq!(
            SweepArgs::parse_argv(&argv(&["--help"])).unwrap_err(),
            "help"
        );
    }

    #[test]
    fn parse_policy_override_and_apply() {
        let (args, rest) =
            SweepArgs::parse_argv(&argv(&["--policy", "req=oldest-first,resp=static"])).unwrap();
        assert!(rest.is_empty());
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg.policy.request.as_deref(), Some("oldest-first"));
        assert_eq!(cfg.policy.response.as_deref(), Some("static"));
        cfg.validate().expect("override produces a valid config");
        // No --policy: configurations pass through untouched.
        let (args, _) = SweepArgs::parse_argv(&argv(&[])).unwrap();
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg, SystemConfig::baseline_32());
    }

    #[test]
    fn parse_kernel_override_and_apply() {
        let (args, rest) = SweepArgs::parse_argv(&argv(&["--kernel", "event"])).unwrap();
        assert!(rest.is_empty());
        assert_eq!(args.kernel, KernelKind::Event);
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg.kernel, KernelKind::Event);
        // No --kernel: configurations pass through untouched.
        let (args, _) = SweepArgs::parse_argv(&argv(&[])).unwrap();
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg, SystemConfig::baseline_32());
    }

    #[test]
    fn parse_resilience_flags() {
        let (args, rest) = SweepArgs::parse_argv(&argv(&[
            "--resume",
            "/tmp/run.nj",
            "--job-timeout",
            "2.5",
            "--retries",
            "3",
        ]))
        .unwrap();
        assert!(rest.is_empty());
        assert_eq!(args.resume.as_deref(), Some(Path::new("/tmp/run.nj")));
        assert_eq!(args.job_timeout, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(args.retries, 3);
        let policy = args.retry_policy();
        assert_eq!(policy.timeout, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(policy.retries, 3);

        assert!(SweepArgs::parse_argv(&argv(&["--resume"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--job-timeout", "0"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--job-timeout", "-1"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--job-timeout", "inf"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--retries", "-1"])).is_err());
    }

    #[test]
    fn fingerprint_tracks_results_not_execution() {
        let base = SweepArgs::parse_argv(&argv(&[])).unwrap().0;
        let fp = sweep_fingerprint(&base);
        assert_eq!(fp, sweep_fingerprint(&base));
        // Execution-only knobs leave the fingerprint alone.
        let (exec, _) = SweepArgs::parse_argv(&argv(&[
            "--jobs",
            "3",
            "--json",
            "/tmp/x.json",
            "--resume",
            "/tmp/x.nj",
            "--job-timeout",
            "1",
            "--retries",
            "2",
        ]))
        .unwrap();
        assert_eq!(fp, sweep_fingerprint(&exec));
        // Result-determining knobs change it.
        let (seeded, _) = SweepArgs::parse_argv(&argv(&["--seed", "999"])).unwrap();
        assert_ne!(fp, sweep_fingerprint(&seeded));
        let (windowed, _) = SweepArgs::parse_argv(&argv(&["--measure", "12345"])).unwrap();
        assert_ne!(fp, sweep_fingerprint(&windowed));
        let (polic, _) = SweepArgs::parse_argv(&argv(&["--policy", "req=oldest-first"])).unwrap();
        assert_ne!(fp, sweep_fingerprint(&polic));
        let (topo, _) = SweepArgs::parse_argv(&argv(&["--topology", "torus"])).unwrap();
        assert_ne!(fp, sweep_fingerprint(&topo));
        let (skipped, _) = SweepArgs::parse_argv(&argv(&["--topology", "express:skip=4"])).unwrap();
        assert_ne!(sweep_fingerprint(&topo), sweep_fingerprint(&skipped));
        // Labels split keys under one fingerprint.
        assert_ne!(job_key(fp, "cell-a"), job_key(fp, "cell-b"));
        assert_eq!(job_key(fp, "cell-a"), job_key(fp, "cell-a"));
    }

    #[test]
    fn json_parse_roundtrips_serializers() {
        let j = Obj::new()
            .field("name", "fig\"09\"\n\t\\")
            .field("count", 3u64)
            .field("neg", -4i64)
            .field("bits", std::f64::consts::PI.to_bits())
            .field("flag", true)
            .field("nothing", Json::Null)
            .field("cells", vec![1u64, 2, 3])
            .field("empty", Json::Arr(vec![]))
            .field("nested", Obj::new().field("k", "v").build())
            .build();
        assert_eq!(Json::parse(&j.to_compact_string()).unwrap(), j);
        assert_eq!(Json::parse(&j.to_json_string()).unwrap(), j);
        assert!(!j.to_compact_string().contains('\n'));
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("123 45").is_err());
        assert!(Json::parse("nulll").is_err());
    }

    fn roundtrip<T: CellCodec + PartialEq + std::fmt::Debug>(value: &T) {
        let encoded = value.encode_cell().to_compact_string();
        let decoded = T::decode_cell(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(&decoded, value, "codec must roundtrip exactly");
    }

    #[test]
    fn cell_codec_roundtrips_primitives_exactly() {
        roundtrip(&42u64);
        roundtrip(&7u32);
        roundtrip(&9usize);
        roundtrip(&-3i64);
        roundtrip(&true);
        roundtrip(&"hello\nworld".to_string());
        roundtrip(&vec![1.5f64, 2.25, f64::MIN_POSITIVE]);
        roundtrip(&[1u64, 2, 3, 4, 5]);
        roundtrip(&(1u64, 2.5f64, "x".to_string()));
        roundtrip(&(1u64, 2.0f64, 3u64, 4u64, 5u64, 6u64, 7u64));
        // The exactness cases decimal rendering would lose:
        roundtrip(&0.1f64);
        roundtrip(&(-0.0f64));
        let nan = f64::NAN;
        let bits = nan.encode_cell();
        assert_eq!(f64::decode_cell(&bits).unwrap().to_bits(), nan.to_bits());
    }

    #[test]
    fn cell_codec_roundtrips_metric_containers_exactly() {
        let mut h = Histogram::new(25, 4000);
        for v in [10, 200, 480, 999, 50_000] {
            h.record(v);
        }
        roundtrip(&h);
        let mut m = RunningMean::new();
        m.record(0.1);
        m.record(123.456);
        roundtrip(&m);
        roundtrip(&SegmentRow {
            count: 3,
            sums: [0.1, 2.0, 3.5, 4.25, 5.0],
        });
        roundtrip(&LoadPoint {
            offered_load: 0.3,
            delivered: 1234,
            avg_latency: 56.789,
            backlog: 42,
        });

        let mut tracker = LatencyTracker::new(2);
        tracker.record_so_far(0, 150);
        tracker.record_return_leg(true, 80);
        tracker.record_return_leg(false, 33);
        let encoded = tracker.encode_cell().to_compact_string();
        let decoded = LatencyTracker::decode_cell(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.num_apps(), 2);
        assert_eq!(decoded.return_leg_means(), tracker.return_leg_means());
        assert_eq!(decoded.app(0).so_far, tracker.app(0).so_far);
        assert_eq!(decoded.app(1).total, tracker.app(1).total);

        let app = decoded.app(0).clone();
        let encoded = app.encode_cell().to_compact_string();
        let decoded = AppLatency::decode_cell(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.so_far, app.so_far);
        assert_eq!(decoded.breakdown(), app.breakdown());
    }

    #[test]
    fn cell_codec_rejects_shape_mismatches() {
        assert!(u64::decode_cell(&Json::Str("nope".into())).is_none());
        assert!(<(u64, u64)>::decode_cell(&Json::Arr(vec![Json::Uint(1)])).is_none());
        assert!(
            <(u64, u64)>::decode_cell(&Json::Arr(vec![
                Json::Uint(1),
                Json::Uint(2),
                Json::Uint(3)
            ]))
            .is_none(),
            "extra elements are a shape mismatch"
        );
        assert!(Histogram::decode_cell(&Json::parse("[0,[],0,0,0]").unwrap()).is_none());
        assert!(AppLatency::decode_cell(&Json::parse("[1,2,3]").unwrap()).is_none());
    }

    #[test]
    fn json_serialization_is_deterministic_and_escaped() {
        let j = Obj::new()
            .field("name", "fig\"09\"\n")
            .field("count", 3u64)
            .field("mean", 282.5)
            .field("whole", 2.0)
            .field("nan", f64::NAN)
            .field("flag", true)
            .field("cells", vec![1u64, 2, 3])
            .field("empty", Json::Arr(vec![]))
            .build();
        let a = j.to_json_string();
        assert_eq!(a, j.to_json_string());
        assert!(a.contains("\"fig\\\"09\\\"\\n\""));
        assert!(a.contains("\"mean\": 282.5"));
        assert!(a.contains("\"whole\": 2"));
        assert!(a.contains("\"nan\": null"));
        assert!(a.ends_with("}\n"));
        // Field order is insertion order, not alphabetical.
        assert!(a.find("name").unwrap() < a.find("count").unwrap());
    }

    #[test]
    fn alone_key_strips_schemes_but_keeps_hardware() {
        let base = SystemConfig::baseline_32();
        assert_eq!(
            alone_key(&base),
            alone_key(&base.clone().with_both_schemes())
        );
        // Policy selection is also contention-only: alone runs share a key.
        let mut with_policy = base.clone();
        with_policy.policy.request = Some("oldest-first".to_string());
        with_policy.policy.response = Some("static".to_string());
        assert_eq!(alone_key(&base), alone_key(&with_policy));
        let mut more_vcs = base.clone();
        more_vcs.noc.vcs_per_port = 8;
        assert_ne!(alone_key(&base), alone_key(&more_vcs));
        let mut other_seed = base.clone();
        other_seed.seed ^= 1;
        assert_ne!(alone_key(&base), alone_key(&other_seed));
        // Kernel selection never changes results, so it never splits keys.
        let mut event = base.clone();
        event.kernel = KernelKind::Event;
        assert_eq!(alone_key(&base), alone_key(&event));
    }
}
