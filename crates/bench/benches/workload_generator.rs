//! Criterion bench: synthetic instruction stream generation rate.

use criterion::{criterion_group, criterion_main, Criterion};
use noclat_cpu::InstrStream;
use noclat_sim::rng::SimRng;
use noclat_workloads::{SpecApp, SyntheticStream};

fn generate(c: &mut Criterion) {
    c.bench_function("generator_10k_instructions", |b| {
        let mut s = SyntheticStream::new(SpecApp::Mcf, 0, &SimRng::new(1));
        b.iter(|| {
            let mut mem = 0u32;
            for _ in 0..10_000 {
                if s.next_instr().is_mem() {
                    mem += 1;
                }
            }
            mem
        })
    });
}

criterion_group!(benches, generate);
criterion_main!(benches);
