//! Bench: synthetic instruction stream generation rate.

use noclat_bench::bench_loop;
use noclat_cpu::InstrStream;
use noclat_sim::rng::SimRng;
use noclat_workloads::{SpecApp, SyntheticStream};

fn main() {
    let mut s = SyntheticStream::new(SpecApp::Mcf, 0, &SimRng::new(1));
    bench_loop("generator_10k_instructions", 100, || {
        let mut mem = 0u32;
        for _ in 0..10_000 {
            if s.next_instr().is_mem() {
                mem += 1;
            }
        }
        mem
    });
}
