//! Bench: per-decision cost of the two schemes' bookkeeping (Scheme-2 bank
//! history table updates/lookups; Scheme-1 threshold math).

use noclat::{BankHistoryTable, Scheme1, ThresholdTable};
use noclat_bench::bench_loop;
use noclat_sim::config::SystemConfig;

fn main() {
    let cfg = SystemConfig::baseline_32();
    bench_loop("scheme2_bht_record_and_decide_10k", 50, || {
        let mut t = BankHistoryTable::new(cfg.scheme2, 64);
        let mut hits = 0u32;
        for i in 0..10_000u64 {
            let bank = (i * 7 % 64) as usize;
            if t.should_expedite(bank, i) {
                hits += 1;
            }
            t.record(bank, i);
        }
        hits
    });
    bench_loop("scheme1_threshold_update_10k", 50, || {
        let mut s1 = Scheme1::new(cfg.scheme1, 32);
        let mut table = ThresholdTable::new(32);
        for i in 0..10_000u64 {
            let core = (i % 32) as usize;
            s1.record_round_trip(core, 300 + (i % 400));
            if let Some(th) = s1.threshold(core) {
                table.set(core, th);
            }
        }
        table.is_late(0, 500)
    });
}
