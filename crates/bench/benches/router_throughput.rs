//! Bench: router pipeline throughput (flits through one router under
//! sustained 4-way contention).

use noclat_bench::bench_loop;
use noclat_noc::{Dir, Flit, FlitKind, Mesh, NodeId, PacketId, Priority, Router, VNet};
use noclat_sim::config::SystemConfig;

fn main() {
    let cfg = SystemConfig::baseline_32().noc;
    let mesh = Mesh::new(8, 4);
    bench_loop("router_tick_contended", 20, || {
        let mut r = Router::new(NodeId(9), mesh, cfg);
        let mut t = 0u64;
        let mut sent = 0u64;
        let mut pkt = 0u64;
        while sent < 2_000 {
            // Keep all four mesh inputs fed with single-flit packets.
            for (i, port) in [Dir::North, Dir::South, Dir::East, Dir::West]
                .into_iter()
                .enumerate()
            {
                let vc = (t % 2) as u8;
                if r.local_vc_space(0) > 0 {
                    pkt += 1;
                    let flit = Flit {
                        packet: PacketId(pkt),
                        kind: FlitKind::HeadTail,
                        dest: NodeId(9), // eject locally
                        vnet: VNet::Request,
                        priority: if i == 0 {
                            Priority::High
                        } else {
                            Priority::Normal
                        },
                        age: (t % 500) as u32,
                        batch: 0,
                        vc,
                        arrived_at: t,
                        ready_at: t,
                    };
                    // Feed only when space exists to respect credits.
                    if t.is_multiple_of(2) {
                        r.accept_flit(port, flit, t);
                    }
                }
            }
            sent += r.tick(t).traversals.len() as u64;
            t += 1;
        }
        sent
    });
}
