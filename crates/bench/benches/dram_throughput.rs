//! Criterion bench: memory controller service rate under a saturating
//! random-bank request stream.

use criterion::{criterion_group, criterion_main, Criterion};
use noclat_mem::MemoryController;
use noclat_sim::config::SystemConfig;
use noclat_sim::rng::SimRng;

fn dram_tick(c: &mut Criterion) {
    let cfg = SystemConfig::baseline_32().mem;
    c.bench_function("controller_saturated_5k_cycles", |b| {
        b.iter(|| {
            let mut mc = MemoryController::new(cfg);
            let mut rng = SimRng::new(3);
            let mut tok = 0u64;
            let mut served = 0usize;
            for t in 0..5_000u64 {
                if mc.occupancy() < 64 {
                    tok += 1;
                    mc.enqueue(tok, rng.index(16), rng.below(256), rng.chance(0.2), t);
                }
                served += mc.tick(t).len();
            }
            served
        })
    });
}

criterion_group!(benches, dram_tick);
criterion_main!(benches);
