//! Bench: memory controller service rate under a saturating random-bank
//! request stream.

use noclat_bench::bench_loop;
use noclat_mem::MemoryController;
use noclat_sim::config::SystemConfig;
use noclat_sim::rng::SimRng;

fn main() {
    let cfg = SystemConfig::baseline_32().mem;
    bench_loop("controller_saturated_5k_cycles", 20, || {
        let mut mc = MemoryController::new(cfg);
        let mut rng = SimRng::new(3);
        let mut tok = 0u64;
        let mut served = 0usize;
        for t in 0..5_000u64 {
            if mc.occupancy() < 64 {
                tok += 1;
                mc.enqueue(tok, rng.index(16), rng.below(256), rng.chance(0.2), t)
                    .expect("bank index in range");
            }
            served += mc.tick(t).len();
        }
        served
    });
}
