//! Criterion bench: full-system simulation speed (cycles per second for the
//! 32-core baseline running workload-2).

use criterion::{criterion_group, criterion_main, Criterion};
use noclat::{System, SystemConfig};
use noclat_workloads::workload;

fn system_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    group.bench_function("baseline_32core_2k_cycles", |b| {
        let apps = workload(2).apps();
        let mut sys = System::new(SystemConfig::baseline_32(), &apps).expect("valid");
        sys.run(5_000); // warm
        b.iter(|| {
            sys.run(2_000);
            sys.now()
        })
    });
    group.bench_function("schemes_32core_2k_cycles", |b| {
        let apps = workload(2).apps();
        let mut sys =
            System::new(SystemConfig::baseline_32().with_both_schemes(), &apps).expect("valid");
        sys.run(5_000);
        b.iter(|| {
            sys.run(2_000);
            sys.now()
        })
    });
    group.finish();
}

criterion_group!(benches, system_step);
criterion_main!(benches);
