//! Bench: full-system simulation speed (cycles per second for the 32-core
//! baseline running workload-2).

use noclat::{System, SystemConfig};
use noclat_bench::bench_loop;
use noclat_workloads::workload;

fn main() {
    let apps = workload(2).apps();
    let mut sys = System::new(SystemConfig::baseline_32(), &apps).expect("valid");
    sys.run(5_000); // warm
    bench_loop("baseline_32core_2k_cycles", 10, || {
        sys.run(2_000);
        sys.now()
    });
    let mut cfg = SystemConfig::baseline_32();
    cfg.watchdog.enabled = false;
    let mut sys = System::new(cfg, &apps).expect("valid");
    sys.run(5_000);
    bench_loop("baseline_32core_2k_cycles_watchdog_off", 10, || {
        sys.run(2_000);
        sys.now()
    });
    let mut sys =
        System::new(SystemConfig::baseline_32().with_both_schemes(), &apps).expect("valid");
    sys.run(5_000);
    bench_loop("schemes_32core_2k_cycles", 10, || {
        sys.run(2_000);
        sys.now()
    });
}
