//! Bench: full-system simulation speed (cycles per second for the 32-core
//! baseline running workload-2).

use noclat::{Simulation, SystemConfig};
use noclat_bench::bench_loop;
use noclat_workloads::workload;

fn main() {
    let apps = workload(2).apps();
    let build = |cfg: SystemConfig| {
        Simulation::builder(cfg)
            .workload(&apps)
            .build()
            .expect("valid")
    };
    let mut sim = build(SystemConfig::baseline_32());
    sim.run(5_000); // warm
    bench_loop("baseline_32core_2k_cycles", 10, || {
        sim.run(2_000);
        sim.now()
    });
    let mut cfg = SystemConfig::baseline_32();
    cfg.watchdog.enabled = false;
    let mut sim = build(cfg);
    sim.run(5_000);
    bench_loop("baseline_32core_2k_cycles_watchdog_off", 10, || {
        sim.run(2_000);
        sim.now()
    });
    let mut sim = build(SystemConfig::baseline_32().with_both_schemes());
    sim.run(5_000);
    bench_loop("schemes_32core_2k_cycles", 10, || {
        sim.run(2_000);
        sim.now()
    });
}
