//! End-to-end chaos tests: drive the `chaos` harness binary, which SIGKILLs
//! a journaled sweep mid-run, damages journal tails, and injects timeouts,
//! self-validating that recovery converges to the golden (uninterrupted)
//! output. The binary exits nonzero on any divergence, so these tests just
//! run it and check the exit status.

use std::process::Command;

fn run_scenario(scenario: &str) {
    let dir = std::env::temp_dir().join(format!(
        "noclat-chaos-test-{}-{scenario}",
        std::process::id()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args([scenario, "--dir", dir.to_str().expect("utf-8 temp dir")])
        .output()
        .expect("run chaos harness");
    assert!(
        output.status.success(),
        "chaos {scenario} failed (exit {:?})\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILL mid-sweep, resume from the journal, byte-identical output.
#[test]
fn kill_mid_sweep_recovers_byte_identical() {
    run_scenario("kill");
}

/// A torn write in the journal tail costs only the damaged cell.
#[test]
fn truncated_journal_tail_recovers() {
    run_scenario("truncate");
}

/// Bit rot in the journal tail is detected by the checksum and healed.
#[test]
fn corrupted_journal_tail_recovers() {
    run_scenario("corrupt");
}

/// Deadline enforcement: a hung cell fails the sweep with the JobTimeout
/// exit code; a transient hang is cleared by `--retries 1` with golden
/// output.
#[test]
fn injected_timeouts_quarantine_and_retry() {
    run_scenario("timeout");
}

/// Unknown scenarios and flags are usage errors with the config exit code.
#[test]
fn bad_usage_exits_with_config_code() {
    for bad in [&["frobnicate"][..], &["kill", "--bogus"][..]] {
        let status = Command::new(env!("CARGO_BIN_EXE_chaos"))
            .args(bad)
            .output()
            .expect("run chaos harness")
            .status;
        assert_eq!(status.code(), Some(2), "argv {bad:?}");
    }
}
