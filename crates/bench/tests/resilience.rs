//! Integration tests of the sweep resilience layer at the library level:
//! journal-backed resume is byte-identical and recomputes only missing
//! cells, damaged journals heal, mismatched journals are rejected, and
//! `--job-timeout`/`--retries` wire through `SweepArgs` into the pool.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use noclat::{JournalError, SimError};
use noclat_bench::sweep::{self, Job, Json, Obj, SweepArgs};

fn args() -> SweepArgs {
    let (mut args, _) = SweepArgs::parse_argv(&[]).expect("empty argv parses");
    args.jobs = 2;
    args
}

fn temp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "noclat-resilience-{}-{name}.nj",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// A cheap deterministic grid that counts how many cells actually execute;
/// the cell value mixes the label-derived seed so resume correctness shows
/// up as a value mismatch, not just a count.
fn counted_grid(n: u64, base_seed: u64, runs: &Arc<AtomicUsize>) -> Vec<Job<(u64, f64)>> {
    (0..n)
        .map(|i| {
            let runs = Arc::clone(runs);
            let seed = sweep::job_seed(base_seed, i);
            Job::new(format!("resilience/cell-{i}"), move || {
                runs.fetch_add(1, Ordering::SeqCst);
                (seed.rotate_left(7) ^ i, (seed % 1000) as f64 / 7.0)
            })
        })
        .collect()
}

fn render(results: &[Result<(u64, f64), SimError>], args: &SweepArgs) -> String {
    let cells: Vec<Json> = results
        .iter()
        .map(|r| {
            let (a, b) = r.as_ref().expect("cell ok");
            Obj::new().field("a", *a).field("b", *b).build()
        })
        .collect();
    sweep::report("resilience-test", args, Json::Arr(cells)).to_json_string()
}

/// The tentpole acceptance property: a sweep interrupted after journaling a
/// strict subset of its cells and then resumed produces a JSON report
/// byte-identical to an uninterrupted run, and recomputes only the cells the
/// interruption lost.
#[test]
fn resumed_sweep_is_byte_identical_and_recomputes_only_missing_cells() {
    let runs = Arc::new(AtomicUsize::new(0));
    let plain = args();
    let golden =
        sweep::try_run_grid(&plain, counted_grid(6, plain.seed, &runs)).expect("no journal");
    let golden_json = render(&golden, &plain);
    assert_eq!(runs.swap(0, Ordering::SeqCst), 6);

    // "Interrupted" run: only the first three cells reach the journal.
    let mut journaled = args();
    journaled.resume = Some(temp_journal("resume"));
    let partial =
        sweep::try_run_grid(&journaled, counted_grid(3, journaled.seed, &runs)).expect("journal");
    assert!(partial.iter().all(Result::is_ok));
    assert_eq!(runs.swap(0, Ordering::SeqCst), 3);

    // Resume with the full grid: the journaled half is decoded, not re-run.
    let resumed =
        sweep::try_run_grid(&journaled, counted_grid(6, journaled.seed, &runs)).expect("journal");
    assert_eq!(
        runs.swap(0, Ordering::SeqCst),
        3,
        "cached cells must not execute again"
    );
    assert_eq!(render(&resumed, &plain), golden_json);

    // A second resume is a pure replay: zero executions, same bytes.
    let replay =
        sweep::try_run_grid(&journaled, counted_grid(6, journaled.seed, &runs)).expect("journal");
    assert_eq!(runs.load(Ordering::SeqCst), 0);
    assert_eq!(render(&replay, &plain), golden_json);
}

/// A journal written under different sweep arguments is rejected with a
/// typed fingerprint mismatch instead of silently resuming wrong data.
#[test]
fn journal_from_a_different_sweep_is_rejected() {
    let runs = Arc::new(AtomicUsize::new(0));
    let mut first = args();
    first.resume = Some(temp_journal("fingerprint"));
    sweep::try_run_grid(&first, counted_grid(2, first.seed, &runs)).expect("journal");

    let mut other = first.clone();
    other.seed ^= 0xdead_beef;
    let err = sweep::try_run_grid(&other, counted_grid(2, other.seed, &runs))
        .expect_err("mismatched journal must be rejected");
    match err {
        SimError::Journal(JournalError::FingerprintMismatch { expected, found }) => {
            assert_eq!(expected, sweep::sweep_fingerprint(&other));
            assert_eq!(found, sweep::sweep_fingerprint(&first));
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
}

/// Torn writes and bit rot in the journal tail cost only the damaged cells:
/// the resume recomputes them, heals the journal, and the results match an
/// undamaged run exactly.
#[test]
fn damaged_journal_tail_recovers_to_identical_results() {
    for damage in ["truncate", "corrupt"] {
        let runs = Arc::new(AtomicUsize::new(0));
        let mut journaled = args();
        journaled.jobs = 1; // deterministic record order: cell-3 is the tail
        journaled.resume = Some(temp_journal(damage));
        let golden = sweep::try_run_grid(&journaled, counted_grid(4, journaled.seed, &runs))
            .expect("journal");
        let golden_json = render(&golden, &journaled);
        assert_eq!(runs.swap(0, Ordering::SeqCst), 4);

        let path = journaled.resume.as_ref().expect("journal path");
        let mut bytes = std::fs::read(path).expect("journal bytes");
        let n = bytes.len();
        match damage {
            "truncate" => bytes.truncate(n - 5),
            "corrupt" => bytes[n - 4] ^= 0x01,
            other => unreachable!("unknown damage {other}"),
        }
        std::fs::write(path, &bytes).expect("write damaged journal");

        let resumed = sweep::try_run_grid(&journaled, counted_grid(4, journaled.seed, &runs))
            .expect("journal");
        assert_eq!(
            runs.swap(0, Ordering::SeqCst),
            1,
            "{damage}: only the damaged tail cell recomputes"
        );
        assert_eq!(render(&resumed, &journaled), golden_json, "{damage}");

        // The healed journal replays with zero executions.
        let replay = sweep::try_run_grid(&journaled, counted_grid(4, journaled.seed, &runs))
            .expect("journal");
        assert_eq!(runs.load(Ordering::SeqCst), 0, "{damage}: journal healed");
        assert_eq!(render(&replay, &journaled), golden_json, "{damage}");
    }
}

/// `--job-timeout`/`--retries` reach the pool through `SweepArgs`: a cell
/// that hangs only on its first attempt is cancelled, retried, and succeeds;
/// errors carry the cell's position in the full grid even under resume.
#[test]
fn timeout_and_retry_wire_through_sweep_args() {
    let mut args = args();
    args.job_timeout = Some(Duration::from_millis(100));
    args.retries = 1;
    args.resume = Some(temp_journal("timeout"));

    let hang_once = |label: &str| {
        Job::with_ctx(label.to_string(), move |ctx| -> (u64, f64) {
            if ctx.attempt == 0 {
                let start = Instant::now();
                while !ctx.cancel.is_cancelled() {
                    assert!(
                        start.elapsed() < Duration::from_secs(30),
                        "deadline supervisor never fired"
                    );
                    std::thread::sleep(Duration::from_millis(2));
                }
                return (0, 0.0);
            }
            (77, 7.5)
        })
    };
    let results = sweep::try_run_grid(
        &args,
        vec![
            Job::new("steady".to_string(), || (1, 1.0)),
            hang_once("transient"),
        ],
    )
    .expect("journal");
    assert_eq!(results[0].as_ref().expect("steady cell"), &(1, 1.0));
    assert_eq!(
        results[1].as_ref().expect("retry clears the hang"),
        &(77, 7.5)
    );

    // Exhausted retries surface as JobTimeout at the cell's full-grid index,
    // counting every attempt; the steady sibling resumes from the journal.
    args.retries = 0;
    let hang_always = Job::with_ctx("always".to_string(), move |ctx| -> (u64, f64) {
        let start = Instant::now();
        while !ctx.cancel.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "deadline supervisor never fired"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        (0, 0.0)
    });
    let results = sweep::try_run_grid(
        &args,
        vec![Job::new("steady".to_string(), || (1, 1.0)), hang_always],
    )
    .expect("journal");
    assert_eq!(results[0].as_ref().expect("steady cell"), &(1, 1.0));
    match &results[1] {
        Err(SimError::JobTimeout {
            job,
            index,
            config_hash,
            timeout_ms,
            attempts,
        }) => {
            assert_eq!(job, "always");
            assert_eq!(*index, 1, "index names the full-grid position");
            assert!(
                config_hash.is_some(),
                "grid jobs carry their content address"
            );
            assert_eq!(*timeout_ms, 100);
            assert_eq!(*attempts, 1);
        }
        other => panic!("expected JobTimeout, got {other:?}"),
    }
}
