//! Integration tests of the sweep resilience layer at the library level:
//! journal-backed resume is byte-identical and recomputes only missing
//! cells, damaged journals heal, mismatched journals are rejected, and
//! `--job-timeout`/`--retries` wire through `SweepArgs` into the pool.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use noclat::{JournalError, SimError, SystemConfig};
use noclat_bench::sweep::{
    self, exit_code, GridCell, Job, Json, Obj, PruneInfo, PruneSpec, SweepArgs,
};
use noclat_workloads::workload;

fn args() -> SweepArgs {
    let (mut args, _) = SweepArgs::parse_argv(&[]).expect("empty argv parses");
    args.jobs = 2;
    args
}

fn temp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "noclat-resilience-{}-{name}.nj",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// A cheap deterministic grid that counts how many cells actually execute;
/// the cell value mixes the label-derived seed so resume correctness shows
/// up as a value mismatch, not just a count.
fn counted_grid(n: u64, base_seed: u64, runs: &Arc<AtomicUsize>) -> Vec<Job<(u64, f64)>> {
    (0..n)
        .map(|i| {
            let runs = Arc::clone(runs);
            let seed = sweep::job_seed(base_seed, i);
            Job::new(format!("resilience/cell-{i}"), move || {
                runs.fetch_add(1, Ordering::SeqCst);
                (seed.rotate_left(7) ^ i, (seed % 1000) as f64 / 7.0)
            })
        })
        .collect()
}

fn render(results: &[Result<(u64, f64), SimError>], args: &SweepArgs) -> String {
    let cells: Vec<Json> = results
        .iter()
        .map(|r| {
            let (a, b) = r.as_ref().expect("cell ok");
            Obj::new().field("a", *a).field("b", *b).build()
        })
        .collect();
    sweep::report("resilience-test", args, Json::Arr(cells)).to_json_string()
}

/// The tentpole acceptance property: a sweep interrupted after journaling a
/// strict subset of its cells and then resumed produces a JSON report
/// byte-identical to an uninterrupted run, and recomputes only the cells the
/// interruption lost.
#[test]
fn resumed_sweep_is_byte_identical_and_recomputes_only_missing_cells() {
    let runs = Arc::new(AtomicUsize::new(0));
    let plain = args();
    let golden =
        sweep::try_run_grid(&plain, counted_grid(6, plain.seed, &runs)).expect("no journal");
    let golden_json = render(&golden, &plain);
    assert_eq!(runs.swap(0, Ordering::SeqCst), 6);

    // "Interrupted" run: only the first three cells reach the journal.
    let mut journaled = args();
    journaled.resume = Some(temp_journal("resume"));
    let partial =
        sweep::try_run_grid(&journaled, counted_grid(3, journaled.seed, &runs)).expect("journal");
    assert!(partial.iter().all(Result::is_ok));
    assert_eq!(runs.swap(0, Ordering::SeqCst), 3);

    // Resume with the full grid: the journaled half is decoded, not re-run.
    let resumed =
        sweep::try_run_grid(&journaled, counted_grid(6, journaled.seed, &runs)).expect("journal");
    assert_eq!(
        runs.swap(0, Ordering::SeqCst),
        3,
        "cached cells must not execute again"
    );
    assert_eq!(render(&resumed, &plain), golden_json);

    // A second resume is a pure replay: zero executions, same bytes.
    let replay =
        sweep::try_run_grid(&journaled, counted_grid(6, journaled.seed, &runs)).expect("journal");
    assert_eq!(runs.load(Ordering::SeqCst), 0);
    assert_eq!(render(&replay, &plain), golden_json);
}

/// A journal written under different sweep arguments is rejected with a
/// typed fingerprint mismatch instead of silently resuming wrong data.
#[test]
fn journal_from_a_different_sweep_is_rejected() {
    let runs = Arc::new(AtomicUsize::new(0));
    let mut first = args();
    first.resume = Some(temp_journal("fingerprint"));
    sweep::try_run_grid(&first, counted_grid(2, first.seed, &runs)).expect("journal");

    let mut other = first.clone();
    other.seed ^= 0xdead_beef;
    let err = sweep::try_run_grid(&other, counted_grid(2, other.seed, &runs))
        .expect_err("mismatched journal must be rejected");
    match err {
        SimError::Journal(JournalError::FingerprintMismatch { expected, found }) => {
            assert_eq!(expected, sweep::sweep_fingerprint(&other));
            assert_eq!(found, sweep::sweep_fingerprint(&first));
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
}

/// Torn writes and bit rot in the journal tail cost only the damaged cells:
/// the resume recomputes them, heals the journal, and the results match an
/// undamaged run exactly.
#[test]
fn damaged_journal_tail_recovers_to_identical_results() {
    for damage in ["truncate", "corrupt"] {
        let runs = Arc::new(AtomicUsize::new(0));
        let mut journaled = args();
        journaled.jobs = 1; // deterministic record order: cell-3 is the tail
        journaled.resume = Some(temp_journal(damage));
        let golden = sweep::try_run_grid(&journaled, counted_grid(4, journaled.seed, &runs))
            .expect("journal");
        let golden_json = render(&golden, &journaled);
        assert_eq!(runs.swap(0, Ordering::SeqCst), 4);

        let path = journaled.resume.as_ref().expect("journal path");
        let mut bytes = std::fs::read(path).expect("journal bytes");
        let n = bytes.len();
        match damage {
            "truncate" => bytes.truncate(n - 5),
            "corrupt" => bytes[n - 4] ^= 0x01,
            other => unreachable!("unknown damage {other}"),
        }
        std::fs::write(path, &bytes).expect("write damaged journal");

        let resumed = sweep::try_run_grid(&journaled, counted_grid(4, journaled.seed, &runs))
            .expect("journal");
        assert_eq!(
            runs.swap(0, Ordering::SeqCst),
            1,
            "{damage}: only the damaged tail cell recomputes"
        );
        assert_eq!(render(&resumed, &journaled), golden_json, "{damage}");

        // The healed journal replays with zero executions.
        let replay = sweep::try_run_grid(&journaled, counted_grid(4, journaled.seed, &runs))
            .expect("journal");
        assert_eq!(runs.load(Ordering::SeqCst), 0, "{damage}: journal healed");
        assert_eq!(render(&replay, &journaled), golden_json, "{damage}");
    }
}

/// `--job-timeout`/`--retries` reach the pool through `SweepArgs`: a cell
/// that hangs only on its first attempt is cancelled, retried, and succeeds;
/// errors carry the cell's position in the full grid even under resume.
#[test]
fn timeout_and_retry_wire_through_sweep_args() {
    let mut args = args();
    args.job_timeout = Some(Duration::from_millis(100));
    args.retries = 1;
    args.resume = Some(temp_journal("timeout"));

    let hang_once = |label: &str| {
        Job::with_ctx(label.to_string(), move |ctx| -> (u64, f64) {
            if ctx.attempt == 0 {
                let start = Instant::now();
                while !ctx.cancel.is_cancelled() {
                    assert!(
                        start.elapsed() < Duration::from_secs(30),
                        "deadline supervisor never fired"
                    );
                    std::thread::sleep(Duration::from_millis(2));
                }
                return (0, 0.0);
            }
            (77, 7.5)
        })
    };
    let results = sweep::try_run_grid(
        &args,
        vec![
            Job::new("steady".to_string(), || (1, 1.0)),
            hang_once("transient"),
        ],
    )
    .expect("journal");
    assert_eq!(results[0].as_ref().expect("steady cell"), &(1, 1.0));
    assert_eq!(
        results[1].as_ref().expect("retry clears the hang"),
        &(77, 7.5)
    );

    // Exhausted retries surface as JobTimeout at the cell's full-grid index,
    // counting every attempt; the steady sibling resumes from the journal.
    args.retries = 0;
    let hang_always = Job::with_ctx("always".to_string(), move |ctx| -> (u64, f64) {
        let start = Instant::now();
        while !ctx.cancel.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "deadline supervisor never fired"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        (0, 0.0)
    });
    let results = sweep::try_run_grid(
        &args,
        vec![Job::new("steady".to_string(), || (1, 1.0)), hang_always],
    )
    .expect("journal");
    assert_eq!(results[0].as_ref().expect("steady cell"), &(1, 1.0));
    match &results[1] {
        Err(SimError::JobTimeout {
            job,
            index,
            config_hash,
            timeout_ms,
            attempts,
        }) => {
            assert_eq!(job, "always");
            assert_eq!(*index, 1, "index names the full-grid position");
            assert!(
                config_hash.is_some(),
                "grid jobs carry their content address"
            );
            assert_eq!(*timeout_ms, 100);
            assert_eq!(*attempts, 1);
        }
        other => panic!("expected JobTimeout, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Two-tier (analytically pruned) sweeps.
// ---------------------------------------------------------------------------

/// A small real-config grid for the pruning pre-pass: the four scheme
/// combos on `baseline_16`, each carrying its model inputs. The jobs
/// themselves are cheap counted stand-ins — pruning must not care what the
/// cycle-accurate closure computes, only whether it runs.
fn prune_cells(runs: &Arc<AtomicUsize>, pin_baseline: bool) -> Vec<GridCell<(u64, f64)>> {
    let base = SystemConfig::baseline_16();
    let apps = workload(2).apps_for(base.num_cores());
    ["baseline", "s1", "s2", "both"]
        .iter()
        .enumerate()
        .map(|(i, scheme)| {
            let cfg = match *scheme {
                "baseline" => base.clone(),
                "s1" => base.clone().with_scheme1(),
                "s2" => base.clone().with_scheme2(),
                _ => base.clone().with_both_schemes(),
            };
            let runs = Arc::clone(runs);
            GridCell {
                job: Job::new(format!("prune/{scheme}"), move || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    ((i as u64).rotate_left(11) ^ 0x5eed, i as f64 / 3.0)
                }),
                prune: Some(PruneInfo {
                    cfg,
                    apps: apps.clone(),
                    golden: pin_baseline && i == 0,
                }),
            }
        })
        .collect()
}

fn render_pruned(outcome: &sweep::PruneOutcome<(u64, f64)>, args: &SweepArgs) -> String {
    let cells: Vec<Json> = outcome
        .results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            let (a, b) = r.as_ref()?.as_ref().expect("cell ok");
            Some(
                Obj::new()
                    .field("i", i as u64)
                    .field("a", *a)
                    .field("b", *b)
                    .build(),
            )
        })
        .collect();
    sweep::report("prune-test", args, Json::Arr(cells)).to_json_string()
}

/// The two-tier acceptance property: cells surviving `--prune
/// analytic:top=K` produce output byte-identical to the same cells of an
/// unpruned run, at any worker count, and golden-pinned cells always
/// survive.
#[test]
fn pruned_survivors_are_byte_identical_to_the_unpruned_run() {
    let runs = Arc::new(AtomicUsize::new(0));

    // Reference: the full (unpruned) grid.
    let plain = args();
    let full = sweep::try_run_pruned_grid(&plain, prune_cells(&runs, true)).expect("no journal");
    assert_eq!(full.kept, 4);
    assert!(
        full.predicted.iter().all(Option::is_none),
        "prune off: no estimates"
    );
    assert_eq!(runs.swap(0, Ordering::SeqCst), 4);

    let mut pruned_args = args();
    pruned_args.prune = PruneSpec::Analytic { top: 1 };
    for jobs in [1, 2] {
        pruned_args.jobs = jobs;
        let runs = Arc::new(AtomicUsize::new(0));
        let pruned =
            sweep::try_run_pruned_grid(&pruned_args, prune_cells(&runs, true)).expect("no journal");
        assert_eq!(pruned.kept, 2, "golden baseline + top-1 survive");
        assert_eq!(
            runs.load(Ordering::SeqCst),
            2,
            "pruned cells must not execute"
        );
        assert!(
            pruned.predicted.iter().all(Option::is_some),
            "every modelled cell gets an estimate"
        );
        assert!(
            pruned.results[0].is_some(),
            "golden-pinned cell survives any pruning"
        );
        // Survivors carry exactly the values the unpruned run computed.
        for (cell, reference) in pruned.results.iter().zip(&full.results) {
            if let Some(r) = cell {
                let got = r.as_ref().expect("cell ok");
                let want = reference
                    .as_ref()
                    .expect("ran unpruned")
                    .as_ref()
                    .expect("cell ok");
                assert_eq!(got, want, "survivor diverged from the unpruned run");
            }
        }
        // And the rendered report bytes match the jobs=1 rendering exactly.
        if jobs == 2 {
            let runs1 = Arc::new(AtomicUsize::new(0));
            let mut one = pruned_args.clone();
            one.jobs = 1;
            let again =
                sweep::try_run_pruned_grid(&one, prune_cells(&runs1, true)).expect("no journal");
            assert_eq!(
                render_pruned(&pruned, &plain),
                render_pruned(&again, &plain),
                "survivor bytes must not depend on worker count"
            );
        }
    }
}

/// The estimator must rank a *prioritized* config below the baseline: with
/// no golden pins and `top=1`, the surviving cell is one of the scheme
/// cells, never plain baseline (the schemes only lower estimated latency).
#[test]
fn pruning_keeps_the_best_predicted_cell() {
    let runs = Arc::new(AtomicUsize::new(0));
    let mut pruned_args = args();
    pruned_args.prune = PruneSpec::Analytic { top: 1 };
    let outcome =
        sweep::try_run_pruned_grid(&pruned_args, prune_cells(&runs, false)).expect("no journal");
    assert_eq!(outcome.kept, 1);
    let survivor = outcome
        .results
        .iter()
        .position(Option::is_some)
        .expect("one survivor");
    let best = outcome
        .predicted
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.unwrap()
                .partial_cmp(&b.1.unwrap())
                .unwrap()
                .then(a.0.cmp(&b.0))
        })
        .map(|(i, _)| i)
        .expect("estimates exist");
    assert_eq!(
        survivor, best,
        "the survivor must be the lowest-predicted-latency cell"
    );
}

/// A killed pruned sweep resumed from its journal converges to the
/// uninterrupted pruned run byte-for-byte, recomputing only the lost cells
/// — the resilience guarantee holds through the pruning pre-pass.
#[test]
fn resumed_pruned_sweep_converges_to_golden() {
    let runs = Arc::new(AtomicUsize::new(0));
    let mut pruned_args = args();
    pruned_args.prune = PruneSpec::Analytic { top: 2 };
    pruned_args.jobs = 1; // deterministic journal record order
    pruned_args.resume = Some(temp_journal("prune-resume"));
    let golden =
        sweep::try_run_pruned_grid(&pruned_args, prune_cells(&runs, true)).expect("journal");
    assert_eq!(golden.kept, 3, "golden baseline + top-2");
    let golden_json = render_pruned(&golden, &pruned_args);
    assert_eq!(runs.swap(0, Ordering::SeqCst), 3);

    // "Kill" the sweep: drop the journal's tail record.
    let path = pruned_args.resume.as_ref().expect("journal path");
    let mut bytes = std::fs::read(path).expect("journal bytes");
    let n = bytes.len();
    bytes.truncate(n - 5);
    std::fs::write(path, &bytes).expect("write truncated journal");

    let resumed =
        sweep::try_run_pruned_grid(&pruned_args, prune_cells(&runs, true)).expect("journal");
    assert_eq!(
        runs.swap(0, Ordering::SeqCst),
        1,
        "only the truncated tail cell recomputes"
    );
    assert_eq!(render_pruned(&resumed, &pruned_args), golden_json);

    // The healed journal replays with zero executions.
    let replay =
        sweep::try_run_pruned_grid(&pruned_args, prune_cells(&runs, true)).expect("journal");
    assert_eq!(runs.load(Ordering::SeqCst), 0, "journal healed");
    assert_eq!(render_pruned(&replay, &pruned_args), golden_json);
}

/// Pruning decides which cells exist, so a pruned journal must never
/// satisfy an unpruned resume (and vice versa); with pruning off the
/// fingerprint is unchanged from the pre-pruning format.
#[test]
fn prune_spec_is_part_of_the_sweep_fingerprint() {
    let off = args();
    let mut pruned = args();
    pruned.prune = PruneSpec::Analytic { top: 3 };
    let mut wider = args();
    wider.prune = PruneSpec::Analytic { top: 4 };
    assert_ne!(
        sweep::sweep_fingerprint(&off),
        sweep::sweep_fingerprint(&pruned)
    );
    assert_ne!(
        sweep::sweep_fingerprint(&pruned),
        sweep::sweep_fingerprint(&wider),
        "a different top-K selects different cells"
    );

    // End to end: a pruned journal rejects an unpruned resume.
    let runs = Arc::new(AtomicUsize::new(0));
    let mut journaled = args();
    journaled.prune = PruneSpec::Analytic { top: 2 };
    journaled.resume = Some(temp_journal("prune-fingerprint"));
    sweep::try_run_pruned_grid(&journaled, prune_cells(&runs, true)).expect("journal");
    let mut unpruned = journaled.clone();
    unpruned.prune = PruneSpec::Off;
    let err = match sweep::try_run_pruned_grid(&unpruned, prune_cells(&runs, true)) {
        Err(e) => e,
        Ok(_) => panic!("pruned journal must not satisfy an unpruned resume"),
    };
    assert!(
        matches!(
            err,
            SimError::Journal(JournalError::FingerprintMismatch { .. })
        ),
        "expected FingerprintMismatch, got {err:?}"
    );
}

#[test]
fn prune_spec_parses_and_round_trips() {
    assert_eq!(PruneSpec::parse("off").expect("parses"), PruneSpec::Off);
    assert_eq!(
        PruneSpec::parse("analytic:top=8").expect("parses"),
        PruneSpec::Analytic { top: 8 }
    );
    for spec in [PruneSpec::Off, PruneSpec::Analytic { top: 12 }] {
        assert_eq!(PruneSpec::parse(&spec.to_string()).expect("parses"), spec);
    }
    for bad in ["analytic", "analytic:top=", "analytic:top=x", "top=3", ""] {
        let err = PruneSpec::parse(bad).expect_err("must reject");
        assert!(err.starts_with("--prune:"), "error {err:?} names the flag");
    }
}

/// A pre-pass that eliminates every cell exits with the dedicated
/// `PRUNED_EMPTY` code — distinct from config errors and job failures — so
/// callers never mistake an empty sweep for a successful one. Regression
/// test for the exit-code collapse where this exited 0 with an empty
/// report.
#[test]
fn pruning_everything_exits_with_the_dedicated_code() {
    let exe = env!("CARGO_BIN_EXE_topo_sweep");
    // A mesh-only grid has no golden cells, so top=0 prunes everything.
    let out = std::process::Command::new(exe)
        .args([
            "--prune",
            "analytic:top=0",
            "--fabrics",
            "mesh",
            "--mc",
            "corner",
            "--size",
            "16",
            "--jobs",
            "1",
        ])
        .output()
        .expect("spawn topo_sweep");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(exit_code::PRUNED_EMPTY),
        "expected PRUNED_EMPTY exit; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("eliminated all"),
        "diagnostic names the cause; stderr:\n{stderr}"
    );
}
