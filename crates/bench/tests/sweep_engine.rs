//! Integration tests of the parallel sweep engine: worker-count
//! invariance of real simulation grids, per-job panic isolation, and
//! fault containment (a wedged or panicking cell must not poison its
//! siblings' results).

use noclat::{run_mix, MixResult, RunLengths, SimError, SystemConfig};
use noclat_bench::sweep::{self, Job, Json, Obj, SweepArgs};
use noclat_sim::faults::{CycleWindow, RouterStall};
use noclat_workloads::workload;

fn small() -> RunLengths {
    RunLengths {
        warmup: 100,
        measure: 600,
    }
}

fn args_with_jobs(jobs: usize) -> SweepArgs {
    let (mut args, _) = SweepArgs::parse_argv(&[]).expect("empty argv parses");
    args.jobs = jobs;
    args.lengths = small();
    args
}

/// Aggregate fingerprint of a run: total off-chip accesses and summed IPC.
fn fingerprint(r: &MixResult) -> (u64, f64) {
    (
        r.per_app.iter().map(|a| a.offchip).sum(),
        r.per_app.iter().map(|a| a.ipc).sum(),
    )
}

fn sim_cell(label: &str, seed: u64, lengths: RunLengths) -> Job<(u64, f64)> {
    let label = label.to_string();
    Job::new(label, move || {
        let mut cfg = SystemConfig::baseline_32();
        cfg.seed = seed;
        fingerprint(&run_mix(&cfg, &workload(2).apps(), lengths))
    })
}

fn sim_grid(base_seed: u64, lengths: RunLengths) -> Vec<Job<(u64, f64)>> {
    (0..3)
        .map(|i| sim_cell(&format!("cell-{i}"), sweep::job_seed(base_seed, i), lengths))
        .collect()
}

/// The acceptance property behind `--jobs N`: the rendered JSON report of a
/// real simulation grid is byte-identical for 1, 4 and 8 workers.
#[test]
fn json_report_is_byte_identical_across_worker_counts() {
    let mut reports = Vec::new();
    for jobs in [1usize, 4, 8] {
        let args = args_with_jobs(jobs);
        let results =
            sweep::try_run_grid(&args, sim_grid(args.seed, args.lengths)).expect("no journal");
        let cells: Vec<Json> = results
            .into_iter()
            .map(|r| {
                let (offchip, ipc) = r.expect("no cell fails");
                Obj::new()
                    .field("offchip", offchip)
                    .field("ipc", ipc)
                    .build()
            })
            .collect();
        let json = sweep::report("engine-test", &args, Json::Arr(cells));
        reports.push(json.to_json_string());
    }
    assert_eq!(reports[0], reports[1], "1 vs 4 workers");
    assert_eq!(reports[0], reports[2], "1 vs 8 workers");
}

/// `run_shards` hands each shard its derived seed and returns results in
/// shard order for any worker count.
#[test]
fn run_shards_results_are_in_shard_order_for_any_worker_count() {
    for jobs in [1usize, 3, 8] {
        let args = args_with_jobs(jobs);
        let vals = sweep::run_shards(&args, "order", 8, |s, seed| (s, seed));
        for (i, &(s, seed)) in vals.iter().enumerate() {
            assert_eq!(s, i as u64);
            assert_eq!(seed, sweep::job_seed(args.seed, i as u64));
        }
    }
}

/// A panicking cell surfaces as a typed error naming the failing
/// configuration, and the sibling cell still returns the same value it
/// produces when run alone.
#[test]
fn panicking_cell_is_isolated_and_named() {
    let args = args_with_jobs(4);
    let lengths = args.lengths;
    let solo = sweep::try_run_grid(&args, vec![sim_cell("clean", 99, lengths)])
        .expect("no journal")
        .remove(0)
        .expect("clean cell runs solo");

    let explosive = Job::new("sweep/threshold-9".to_string(), move || -> (u64, f64) {
        panic!("threshold 9 is out of range")
    });
    let results = sweep::try_run_grid(&args, vec![explosive, sim_cell("clean", 99, lengths)])
        .expect("no journal");

    match &results[0] {
        Err(SimError::JobPanicked {
            job,
            index,
            message,
            config_hash,
            attempts,
        }) => {
            assert_eq!(job, "sweep/threshold-9");
            assert_eq!(*index, 0);
            assert!(
                message.contains("threshold 9"),
                "panic payload lost: {message}"
            );
            assert!(
                config_hash.is_some(),
                "grid jobs carry their content address"
            );
            assert_eq!(*attempts, 1, "no retries were requested");
        }
        other => panic!("expected JobPanicked, got {other:?}"),
    }
    assert_eq!(
        results[1].as_ref().expect("sibling unaffected"),
        &solo,
        "a panicking sibling must not change another cell's result"
    );
}

/// A shard whose mesh wedges (watchdog violations firing) must neither hang
/// the sweep nor perturb its clean sibling: the sibling's numbers equal a
/// solo run, and the wedged shard reports its violations as data.
#[test]
fn watchdog_violation_in_one_shard_does_not_poison_siblings() {
    let args = args_with_jobs(4);
    let lengths = small();
    let clean_summary = |seed: u64| {
        move || {
            let mut cfg = SystemConfig::baseline_32();
            cfg.seed = seed;
            let r = run_mix(&cfg, &workload(2).apps(), lengths);
            let (offchip, ipc) = fingerprint(&r);
            (r.system.robustness().violations, offchip, ipc)
        }
    };
    let solo = sweep::try_run_grid(&args, vec![Job::new("clean".to_string(), clean_summary(7))])
        .expect("no journal")
        .remove(0)
        .expect("clean shard runs solo");
    assert_eq!(solo.0, 0, "clean shard must not trip the watchdog");

    let wedged = Job::new("wedged".to_string(), move || {
        let mut cfg = SystemConfig::baseline_32();
        cfg.watchdog.deadlock_cycles = 500;
        cfg.recovery.enabled = false; // pure detection: nothing re-injects
        for node in 0..32 {
            cfg.faults.router_stalls.push(RouterStall {
                node,
                window: CycleWindow {
                    start: 200,
                    end: u64::MAX,
                },
            });
        }
        let r = run_mix(
            &cfg,
            &workload(2).apps(),
            RunLengths {
                warmup: 100,
                measure: 3_000,
            },
        );
        let (offchip, ipc) = fingerprint(&r);
        (r.system.robustness().violations, offchip, ipc)
    });
    let results = sweep::try_run_grid(
        &args,
        vec![wedged, Job::new("clean".to_string(), clean_summary(7))],
    )
    .expect("no journal");

    let wedged_out = results[0].as_ref().expect("wedged shard still completes");
    assert!(
        wedged_out.0 > 0,
        "a fully stalled mesh must report watchdog violations"
    );
    assert_eq!(
        results[1].as_ref().expect("sibling unaffected"),
        &solo,
        "a wedged sibling must not change another shard's result"
    );
}
