//! End-to-end `--jobs` equivalence of a real harness binary: fig09 (the
//! sharded distribution figure) must print and serialize byte-identical
//! reports whether its shards run serially or on four workers.

use std::process::Command;

#[test]
fn fig09_reports_are_byte_identical_across_jobs() {
    let dir = std::env::temp_dir().join(format!("noclat-bin-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut outputs = Vec::new();
    for jobs in ["1", "4"] {
        let json = dir.join(format!("fig09-{jobs}.json"));
        let out = Command::new(env!("CARGO_BIN_EXE_fig09"))
            .args([
                "--warmup",
                "200",
                "--measure",
                "1000",
                "--jobs",
                jobs,
                "--json",
            ])
            .arg(&json)
            .output()
            .expect("fig09 spawns");
        assert!(
            out.status.success(),
            "fig09 --jobs {jobs} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let report = std::fs::read(&json).expect("fig09 wrote the JSON report");
        assert!(!report.is_empty());
        outputs.push((out.stdout, report));
    }
    assert_eq!(
        outputs[0].0, outputs[1].0,
        "stdout must not depend on --jobs"
    );
    assert_eq!(
        outputs[0].1, outputs[1].1,
        "the JSON report must not depend on --jobs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shared flag parser rejects unknown arguments with exit status 2 (so
/// CI scripts fail fast on typos) and honors `--help` with status 0.
#[test]
fn fig09_rejects_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig09"))
        .arg("--frobnicate")
        .output()
        .expect("fig09 spawns");
    assert_eq!(out.status.code(), Some(2));
    let help = Command::new(env!("CARGO_BIN_EXE_fig09"))
        .arg("--help")
        .output()
        .expect("fig09 spawns");
    assert_eq!(help.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&help.stderr).contains("--jobs"));
}

/// `--topology` mistakes are usage errors (exit 2), never cell panics —
/// both the parse-time kind (unknown fabric) and the validate-time kind
/// (a concentration that can't tile the grid, caught only once the
/// override meets a concrete configuration).
#[test]
fn simulate_rejects_invalid_topology_specs_as_usage_errors() {
    let bad_fabric = Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(["--topology", "bogus", "--measure", "100"])
        .output()
        .expect("simulate spawns");
    assert_eq!(bad_fabric.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_fabric.stderr).contains("unknown fabric"));

    let bad_concentration = Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(["--topology", "cmesh:c=3", "--measure", "100"])
        .output()
        .expect("simulate spawns");
    assert_eq!(bad_concentration.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_concentration.stderr).contains("error: --topology:"));
}
