//! Bank-load balancing: the paper's second motivation (Section 2.4.2) is
//! that DRAM bank loads are non-uniform — some banks idle while others build
//! queues. Scheme-2 expedites requests headed for (locally presumed) idle
//! banks to even this out.
//!
//! This example visualizes per-bank idleness with and without Scheme-2 and
//! reports how often the Bank History Tables fired.
//!
//! Run with:
//! ```text
//! cargo run --release --example bank_balance
//! ```

use noclat_repro::workloads::workload;
use noclat_repro::{run_mix, RunLengths, SystemConfig};

fn bars(values: &[f64]) -> Vec<String> {
    values
        .iter()
        .map(|v| "#".repeat((v * 40.0).round() as usize))
        .collect()
}

fn main() {
    let lengths = RunLengths {
        warmup: 10_000,
        measure: 80_000,
    };
    let apps = workload(8).apps(); // memory-intensive: banks actually queue
    let base = run_mix(&SystemConfig::baseline_32(), &apps, lengths);
    let s2 = run_mix(&SystemConfig::baseline_32().with_scheme2(), &apps, lengths);

    println!("per-bank idleness, memory controller 0 (workload-8):\n");
    let ib = base.system.idleness(0).per_bank_idleness();
    let is2 = s2.system.idleness(0).per_bank_idleness();
    let bb = bars(&ib);
    let bs = bars(&is2);
    println!("{:>4} {:>8} {:42} {:>8}", "bank", "default", "", "scheme2");
    for b in 0..ib.len() {
        println!(
            "{b:>4} {:>8.3} {:20}|{:20} {:>8.3}",
            ib[b], bb[b], bs[b], is2[b]
        );
    }

    for m in 0..base.system.num_controllers() {
        println!(
            "controller {m}: overall idleness {:.4} -> {:.4}",
            base.system.idleness(m).overall(),
            s2.system.idleness(m).overall()
        );
    }

    let hp = s2.system.network_stats().high_priority_injected.get();
    let total = s2.system.network_stats().packets_injected.get();
    println!(
        "\nrequests expedited by the Bank History Tables: {hp} of {total} packets ({:.1}%)",
        hp as f64 / total as f64 * 100.0
    );

    // The payoff: average end-to-end latency of off-chip accesses.
    let mean = |r: &noclat_repro::MixResult| {
        let mut h = noclat_repro::sim::stats::Histogram::new(25, 4000);
        for c in 0..32 {
            h.merge(&r.system.tracker().app(c).total);
        }
        h.mean()
    };
    println!(
        "off-chip latency mean: {:.0} -> {:.0} cycles",
        mean(&base),
        mean(&s2)
    );
}
