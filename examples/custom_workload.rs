//! Driving the simulator with a custom workload: implement [`InstrStream`]
//! yourself and hand it to [`SimulationBuilder::streams`].
//!
//! Here we build a pointer-chasing microkernel (serialized, latency-bound —
//! the worst case for in-order commit) and a streaming microkernel
//! (bandwidth-bound, high MLP), run 16 of each on the 32-core system, and
//! compare how the two react to the prioritization schemes.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_workload
//! ```

use noclat_repro::cpu::{Instr, InstrStream, ResidentSet};
use noclat_repro::sim::rng::splitmix64;
use noclat_repro::{Simulation, SystemConfig};

/// Serialized pointer chase over a large region: one off-chip access at a
/// time, each "dependent" on the previous (modeled as a long chase period).
#[derive(Debug)]
struct PointerChase {
    state: u64,
    countdown: u32,
}

impl PointerChase {
    fn new(seed: u64) -> Self {
        PointerChase {
            state: splitmix64(seed),
            countdown: 0,
        }
    }
}

impl InstrStream for PointerChase {
    fn next_instr(&mut self) -> Instr {
        if self.countdown > 0 {
            self.countdown -= 1;
            return Instr::Compute { latency: 1 };
        }
        self.countdown = 40; // "work" between dereferences
        self.state = splitmix64(self.state);
        // 1 GB region, line-aligned, in this app's private space.
        let addr = (1u64 << 41) | ((self.state % (1 << 24)) * 64);
        Instr::Load { addr }
    }
}

/// Sequential streaming: bursts of independent loads marching through
/// memory (high memory-level parallelism).
#[derive(Debug)]
struct Streamer {
    cursor: u64,
    base: u64,
}

impl Streamer {
    fn new(slot: u64) -> Self {
        Streamer {
            cursor: 0,
            base: (1u64 << 42) | (slot << 32),
        }
    }
}

impl InstrStream for Streamer {
    fn next_instr(&mut self) -> Instr {
        self.cursor += 1;
        if self.cursor.is_multiple_of(16) {
            Instr::Load {
                addr: self.base + (self.cursor / 16) * 64,
            }
        } else {
            Instr::Compute { latency: 1 }
        }
    }

    fn resident_lines(&self) -> ResidentSet {
        ResidentSet::default() // streams are always cold; nothing to prewarm
    }
}

fn build(cfg: SystemConfig) -> Simulation {
    let streams: Vec<Box<dyn InstrStream>> = (0..cfg.num_cores())
        .map(|slot| {
            if slot % 2 == 0 {
                Box::new(PointerChase::new(slot as u64)) as Box<dyn InstrStream>
            } else {
                Box::new(Streamer::new(slot as u64)) as Box<dyn InstrStream>
            }
        })
        .collect();
    Simulation::builder(cfg)
        .streams(streams)
        .build()
        .expect("valid configuration")
}

fn run(cfg: SystemConfig) -> (f64, f64) {
    let mut sim = build(cfg);
    sim.warm_up(5_000);
    sim.run(50_000);
    let mut chase = 0.0;
    let mut stream = 0.0;
    for core in 0..32 {
        let ipc = sim.system().core_stats(core).ipc();
        if core % 2 == 0 {
            chase += ipc / 16.0;
        } else {
            stream += ipc / 16.0;
        }
    }
    (chase, stream)
}

fn main() {
    let base = SystemConfig::baseline_32();
    let (c0, s0) = run(base.clone());
    let (c1, s1) = run(base.with_both_schemes());
    println!("mean IPC over 16 instances of each microkernel:\n");
    println!(
        "{:>16} {:>9} {:>9} {:>8}",
        "kernel", "baseline", "schemes", "delta"
    );
    println!(
        "{:>16} {:>9.3} {:>9.3} {:>+7.1}%",
        "pointer-chase",
        c0,
        c1,
        (c1 / c0 - 1.0) * 100.0
    );
    println!(
        "{:>16} {:>9.3} {:>9.3} {:>+7.1}%",
        "streamer",
        s0,
        s1,
        (s1 / s0 - 1.0) * 100.0
    );
    println!("\nPointer chasing is latency-bound (every load blocks commit); streaming");
    println!("overlaps its misses. Which kernel the prioritization schemes help more");
    println!("depends on where the contention sits -- rerun with different kernel");
    println!("parameters to explore the trade-off.");
}
