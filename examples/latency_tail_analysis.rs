//! Latency-tail analysis: the paper's motivating observation (Section 2.4.1)
//! is that a few memory accesses suffer far higher delays than the rest, and
//! that these *late* accesses gate application progress because commit is
//! in-order.
//!
//! This example quantifies the tail for one memory-intensive workload and
//! shows what Scheme-1 does to it: where the late accesses spend their time
//! (the five-path breakdown of Figure 2) and how much of the return path the
//! expedited messages save.
//!
//! Run with:
//! ```text
//! cargo run --release --example latency_tail_analysis
//! ```

use noclat_repro::workloads::{workload, SpecApp};
use noclat_repro::{run_mix, RunLengths, SystemConfig};

fn main() {
    let lengths = RunLengths {
        warmup: 10_000,
        measure: 80_000,
    };
    let apps = workload(8).apps(); // all memory-intensive
    let base = run_mix(&SystemConfig::baseline_32(), &apps, lengths);
    let s1 = run_mix(&SystemConfig::baseline_32().with_scheme1(), &apps, lengths);

    // Pick the heaviest app present (mcf) and dissect its tail.
    let core = base
        .per_app
        .iter()
        .find(|a| a.app == SpecApp::Mcf)
        .expect("workload-8 contains mcf")
        .core;
    let app = base.system.tracker().app(core);
    println!("mcf (core {core}) off-chip accesses: {}", app.total.count());
    println!(
        "latency: mean {:.0}, p50 {}, p90 {}, p99 {} cycles",
        app.total.mean(),
        app.total.percentile(0.50),
        app.total.percentile(0.90),
        app.total.percentile(0.99),
    );

    println!("\nwhere do SLOW accesses lose their time? (five-path breakdown)");
    println!(
        "{:>7} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "range", "count", "L1->L2", "L2->Mem", "Mem", "Mem->L2", "L2->L1"
    );
    let rows = app.breakdown();
    // Print the slowest third of the populated ranges.
    let start = rows.len() * 2 / 3;
    for (range, row) in &rows[start..] {
        let a = row.averages();
        println!(
            "{range:>7} {:>6} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
            row.count, a[0], a[1], a[2], a[3], a[4]
        );
    }

    // Scheme-1's effect on the marked (late) messages.
    let (expedited, normal) = s1.system.tracker().return_leg_means();
    println!("\nScheme-1 return-path delay (memory controller -> core fill):");
    println!(
        "  normal-priority responses : {:.0} cycles",
        normal.unwrap_or(f64::NAN)
    );
    println!(
        "  expedited (late) responses: {:.0} cycles",
        expedited.unwrap_or(f64::NAN)
    );

    let hp = s1.system.router_counters();
    println!(
        "\nhigh-priority flits traversed: {} (of {} total, {:.1}%)",
        hp.high_priority_traversed,
        hp.flits_traversed,
        hp.high_priority_traversed as f64 / hp.flits_traversed as f64 * 100.0
    );
    println!("flits that used pipeline bypassing: {}", hp.flits_bypassed);

    // System-wide tail movement.
    let merge = |r: &noclat_repro::MixResult| {
        let mut h = noclat_repro::sim::stats::Histogram::new(25, 4000);
        for c in 0..32 {
            h.merge(&r.system.tracker().app(c).total);
        }
        h
    };
    let hb = merge(&base);
    let hs = merge(&s1);
    println!(
        "\nsystem-wide off-chip latency p95: {} -> {} cycles; p99: {} -> {}",
        hb.percentile(0.95),
        hs.percentile(0.95),
        hb.percentile(0.99),
        hs.percentile(0.99),
    );
}
