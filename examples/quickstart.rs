//! Quickstart: build the paper's baseline system, run a Table-2 workload,
//! and compare the two prioritization schemes against the baseline.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use noclat_repro::workloads::workload;
use noclat_repro::{run_mix, weighted_speedup_of, RunLengths, SystemConfig};
use std::collections::HashMap;

fn main() {
    // The paper's Table-1 hardware: 32 out-of-order cores on a 4x8 mesh,
    // S-NUCA L2, four corner memory controllers.
    let baseline = SystemConfig::baseline_32();

    // Workload-2 from Table 2: a mixed bag of memory-intensive and
    // non-intensive SPEC CPU2006 applications, one per core.
    let mix = workload(2);
    println!(
        "running {} ({:?}, {} apps)...",
        mix.name(),
        mix.kind,
        mix.apps().len()
    );

    // Short demo windows; the figure harnesses use longer ones.
    let lengths = RunLengths {
        warmup: 10_000,
        measure: 60_000,
    };

    let base = run_mix(&baseline, &mix.apps(), lengths);
    let schemes = run_mix(&baseline.clone().with_both_schemes(), &mix.apps(), lengths);

    println!("\nper-application IPC (first 8 cores):");
    println!(
        "{:>4} {:>12} {:>9} {:>9}",
        "core", "app", "baseline", "schemes"
    );
    for core in 0..8 {
        println!(
            "{:>4} {:>12} {:>9.3} {:>9.3}",
            core,
            base.per_app[core].app.name(),
            base.per_app[core].ipc,
            schemes.per_app[core].ipc
        );
    }

    // Weighted speedup needs alone-run IPCs; approximate them here with the
    // per-app IPCs of a lightly-loaded run to keep the example fast. The
    // experiment driver (`alone_ipc_table`) does this properly.
    let alone: HashMap<_, _> = base
        .per_app
        .iter()
        .map(|a| (a.app, a.ipc.max(1e-3)))
        .collect();
    let ws_base = weighted_speedup_of(&base, &alone);
    let ws_schemes = weighted_speedup_of(&schemes, &alone);
    println!(
        "\nweighted speedup (vs shared-run IPCs): baseline {ws_base:.2}, schemes {ws_schemes:.2} ({:+.1}%)",
        (ws_schemes / ws_base - 1.0) * 100.0
    );

    let tail = |r: &noclat_repro::MixResult| {
        let mut h = noclat_repro::sim::stats::Histogram::new(25, 4000);
        for c in 0..32 {
            h.merge(&r.system.tracker().app(c).total);
        }
        (h.mean(), h.percentile(0.95))
    };
    let (mb, pb) = tail(&base);
    let (ms, ps) = tail(&schemes);
    println!("off-chip latency: mean {mb:.0} -> {ms:.0} cycles, p95 {pb} -> {ps} cycles");
    println!(
        "bank idleness: {:.3} -> {:.3}",
        base.avg_bank_idleness(),
        schemes.avg_bank_idleness()
    );
}
