//! # noclat-repro
//!
//! A from-scratch Rust reproduction of *Addressing End-to-End Memory Access
//! Latency in NoC-Based Multicores* (Sharifi, Kultursay, Kandemir, Das —
//! MICRO 2012): a cycle-level 32-core mesh multicore simulator (out-of-order
//! cores, private L1s, banked S-NUCA L2, virtual-channel wormhole NoC,
//! FR-FCFS DRAM controllers) plus the paper's two network prioritization
//! schemes.
//!
//! This crate is a facade: it re-exports the public API of the [`noclat`]
//! core crate and its substrate crates. See the README for a tour and
//! DESIGN.md for the system inventory.
//!
//! ```
//! use noclat_repro::{run_mix, RunLengths, SystemConfig};
//! use noclat_repro::workloads::workload;
//!
//! let cfg = SystemConfig::baseline_32().with_both_schemes();
//! let lengths = RunLengths { warmup: 200, measure: 2_000 };
//! let result = run_mix(&cfg, &workload(1).apps(), lengths);
//! assert_eq!(result.per_app.len(), 32);
//! ```

pub use noclat::*;

/// Cache hierarchy models (private L1, S-NUCA L2, MSHRs).
pub use noclat_cache as cache;
/// Out-of-order core model.
pub use noclat_cpu as cpu;
/// DRAM banks and FR-FCFS memory controllers.
pub use noclat_mem as mem;
/// The 2D-mesh wormhole network-on-chip.
pub use noclat_noc as noc;
/// Simulation kernel: configuration, RNG, statistics.
pub use noclat_sim as sim;
/// Synthetic SPEC CPU2006 workloads and Table-2 mixes.
pub use noclat_workloads as workloads;
