//! Cross-crate integration: drive the full stack through the facade crate,
//! exactly as a downstream user would.

use noclat_repro::workloads::{workload, SpecApp, WorkloadKind};
use noclat_repro::{
    run_mix, weighted_speedup, weighted_speedup_of, RunLengths, Simulation, SystemConfig,
};

fn quick() -> RunLengths {
    RunLengths {
        warmup: 3_000,
        measure: 20_000,
    }
}

#[test]
fn facade_exposes_the_full_pipeline() {
    let cfg = SystemConfig::baseline_32().with_both_schemes();
    let mix = workload(1);
    assert_eq!(mix.kind, WorkloadKind::Mixed);
    let r = run_mix(&cfg, &mix.apps(), quick());
    assert_eq!(r.per_app.len(), 32);
    assert!(r.per_app.iter().all(|a| a.ipc > 0.0));
    // Latency machinery is reachable through the result.
    let total: u64 = r.system.tracker().completions().iter().sum();
    assert!(total > 100, "expected off-chip traffic, got {total}");
}

#[test]
fn substrate_crates_compose_via_reexports() {
    // Types from every substrate crate are usable through the facade.
    let mesh = noclat_repro::noc::Mesh::new(8, 4);
    assert_eq!(mesh.num_nodes(), 32);
    let map = noclat_repro::mem::AddressMap::new(64, 4, 16, 8192);
    assert_eq!(map.total_banks(), 64);
    let l1 = noclat_repro::cache::L1Cache::new(32 * 1024, 64);
    assert_eq!(l1.num_sets(), 512);
    let cfg = noclat_repro::sim::config::SystemConfig::baseline_32();
    let core = noclat_repro::cpu::OooCore::new(cfg.cpu);
    assert_eq!(core.window_len(), 0);
    assert_eq!(SpecApp::ALL.len(), 28);
}

#[test]
fn weighted_speedup_is_the_paper_metric() {
    // WS = sum of IPC_shared / IPC_alone (Section 4.1).
    let ws = weighted_speedup(&[0.5, 1.0, 0.25], &[1.0, 1.0, 0.5]);
    assert!((ws - 2.0).abs() < 1e-12);
}

#[test]
fn scheme_toggles_change_behavior() {
    let apps = workload(8).apps();
    let base = run_mix(&SystemConfig::baseline_32(), &apps, quick());
    let both = run_mix(
        &SystemConfig::baseline_32().with_both_schemes(),
        &apps,
        quick(),
    );
    // The runs must actually differ (schemes perturb arbitration).
    let diff = base
        .per_app
        .iter()
        .zip(&both.per_app)
        .filter(|(a, b)| a.ipc != b.ipc)
        .count();
    assert!(diff > 16, "schemes changed only {diff}/32 cores");
    // And high-priority traffic exists only with schemes on.
    assert_eq!(
        base.system.network_stats().high_priority_injected.get(),
        0,
        "baseline must not prioritize"
    );
    assert!(both.system.network_stats().high_priority_injected.get() > 0);
}

#[test]
fn alone_runs_beat_shared_runs() {
    // IPC_alone >= IPC_shared for a memory-intensive app (contention only
    // hurts), making weighted speedups <= num_cores.
    let lengths = quick();
    let apps = workload(8).apps();
    let shared = run_mix(&SystemConfig::baseline_32(), &apps, lengths);
    let alone = noclat_repro::alone_ipc(&SystemConfig::baseline_32(), SpecApp::Mcf, lengths);
    let shared_mcf = shared
        .per_app
        .iter()
        .find(|a| a.app == SpecApp::Mcf)
        .expect("mcf in workload-8")
        .ipc;
    assert!(
        alone > shared_mcf,
        "alone IPC {alone:.3} must beat shared IPC {shared_mcf:.3}"
    );
    let table = std::collections::HashMap::from([(SpecApp::Mcf, alone)]);
    let _ = &table; // silence unused in case of future edits
    let ws = weighted_speedup_of(
        &shared,
        &noclat_repro::alone_ipc_table(&SystemConfig::baseline_32(), &apps, lengths),
    );
    assert!(ws > 1.0 && ws < 32.0, "weighted speedup {ws} out of range");
}

#[test]
fn all_18_workloads_build_and_step() {
    for i in 1..=18 {
        let apps = workload(i).apps();
        let mut sim = Simulation::builder(SystemConfig::baseline_32())
            .workload(&apps)
            .build()
            .expect("valid");
        sim.run_until(500);
        assert!(
            sim.system().network_stats().packets_injected.get() > 0,
            "workload-{i} injected nothing"
        );
    }
}

#[test]
fn sixteen_core_variant_is_consistent() {
    let cfg = SystemConfig::baseline_16();
    let apps = workload(1).first_half();
    assert_eq!(apps.len(), cfg.num_cores());
    let r = run_mix(&cfg, &apps, quick());
    assert!(r.per_app.iter().all(|a| a.ipc > 0.0));
    assert_eq!(r.system.num_controllers(), 2);
}
