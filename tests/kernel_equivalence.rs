//! Kernel-equivalence matrix: the event-wheel kernel must be *bit-identical*
//! to the cycle-driven kernel — not statistically close — on every scheme
//! combination, on both policy-selection paths (scheme flags and registry
//! names), and under injected faults.
//!
//! Each cell runs the same configuration under both kernels and compares a
//! deep fingerprint: per-core counters for all 32 cores, network and
//! controller statistics, in-flight populations, the liveness-violation
//! multiset, and the *complete* probe event stream (every router hop, every
//! controller dequeue, every retirement, each with its cycle stamp). A
//! kernel that skips one cycle it should not have — or wakes one cycle late
//! — moves an event stamp and fails the cell.

use std::sync::{Arc, Mutex};

use noclat_repro::noc::Hop;
use noclat_repro::sim::faults::{BankFault, BankFaultKind, CycleWindow, FaultPlan, RouterStall};
use noclat_repro::workloads::workload;
use noclat_repro::{
    KernelKind, McDequeue, Probe, Retire, Simulation, SystemConfig, TopologyOverride,
};

/// Cycles per run: long enough that Scheme-1's 10k-cycle threshold-update
/// period elapses (shorter windows never exercise its wake-up source).
const RUN_CYCLES: u64 = 12_000;

/// Cycles per off-mesh topology cell. The 256-core fabrics are ~8x the work
/// per cycle of the 32-core mesh, and their cells target the *network*
/// wake-up contracts (wraparound links, shared cmesh routers, express
/// channels), which a few thousand cycles exercise densely.
const TOPO_RUN_CYCLES: u64 = 3_000;

/// Records every probe event as a rendered line, shared out via `Arc` so the
/// stream survives the probe moving into the system.
#[derive(Default)]
struct Recorder {
    events: Arc<Mutex<Vec<String>>>,
}

impl Recorder {
    fn new() -> (Self, Arc<Mutex<Vec<String>>>) {
        let rec = Recorder::default();
        let events = Arc::clone(&rec.events);
        (rec, events)
    }

    fn push(&self, line: String) {
        self.events.lock().expect("recorder lock").push(line);
    }
}

impl Probe for Recorder {
    fn on_hop(&mut self, hop: &Hop) {
        self.push(format!(
            "hop {:?} {:?} {:?} {:?} age={} @{}",
            hop.node, hop.out_port, hop.priority, hop.vnet, hop.age, hop.cycle
        ));
    }

    fn on_mc_dequeue(&mut self, ev: &McDequeue) {
        self.push(format!(
            "mc{} core={} so_far={} queued={} {:?} @{}",
            ev.mc, ev.core, ev.so_far_delay, ev.queued_for, ev.priority, ev.cycle
        ));
    }

    fn on_retire(&mut self, ev: &Retire) {
        self.push(format!(
            "retire core={} line={:#x} offchip={} merged={} lat={} @{}",
            ev.core, ev.line, ev.offchip, ev.merged, ev.total_latency, ev.cycle
        ));
    }
}

/// Everything one run pins. `PartialEq` + `Debug` so a failing cell prints
/// both sides.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    now: u64,
    cores: Vec<(u64, u64, u64, u64)>,
    packets_injected: u64,
    packets_delivered: u64,
    high_priority_injected: u64,
    controller_reads: Vec<u64>,
    txns_in_flight: usize,
    packets_in_flight: usize,
    violations: Vec<String>,
    events: Vec<String>,
}

fn run_cell(
    label: &str,
    cfg: &SystemConfig,
    plan: &FaultPlan,
    warmup: u64,
    cycles: u64,
    kernel: KernelKind,
) -> Fingerprint {
    let (rec, events) = Recorder::new();
    let mut sim = Simulation::builder(cfg.clone())
        .kernel(kernel)
        .fault_plan(plan.clone())
        .workload(&workload(2).apps_for(cfg.num_cores()))
        .probe(Box::new(rec))
        .build()
        .unwrap_or_else(|e| panic!("{label}: invalid config: {e}"));
    if warmup > 0 {
        sim.warm_up(warmup);
    }
    sim.run(cycles);
    let sys = sim.system();
    // Violation order can differ across runs when several trip in the same
    // scan (hash-map iteration); the *multiset* is the contract, so sort.
    let mut violations: Vec<String> = sys.violations().iter().map(|v| format!("{v:?}")).collect();
    violations.sort();
    let events = events.lock().expect("recorder lock").clone();
    Fingerprint {
        now: sys.now(),
        cores: (0..cfg.num_cores())
            .map(|c| {
                let s = sys.core_stats(c);
                (s.committed, s.cycles, s.mem_stall_cycles, s.offchip_ops)
            })
            .collect(),
        packets_injected: sys.network_stats().packets_injected.get(),
        packets_delivered: sys.network_stats().packets_delivered.get(),
        high_priority_injected: sys.network_stats().high_priority_injected.get(),
        controller_reads: (0..sys.num_controllers())
            .map(|m| sys.controller_stats(m).reads.get())
            .collect(),
        txns_in_flight: sys.txns_in_flight(),
        packets_in_flight: sys.packets_in_flight(),
        violations,
        events,
    }
}

fn assert_kernels_agree(label: &str, cfg: &SystemConfig, plan: &FaultPlan) {
    assert_kernels_agree_for(label, cfg, plan, 0, RUN_CYCLES);
}

fn assert_kernels_agree_warmed(label: &str, cfg: &SystemConfig, plan: &FaultPlan, warmup: u64) {
    assert_kernels_agree_for(label, cfg, plan, warmup, RUN_CYCLES);
}

fn assert_kernels_agree_for(
    label: &str,
    cfg: &SystemConfig,
    plan: &FaultPlan,
    warmup: u64,
    cycles: u64,
) {
    let cycle = run_cell(label, cfg, plan, warmup, cycles, KernelKind::Cycle);
    let event = run_cell(label, cfg, plan, warmup, cycles, KernelKind::Event);
    assert!(
        !cycle.events.is_empty(),
        "{label}: cell observed no traffic — the comparison is vacuous"
    );
    // Compare the streams first with a usable diff location, then the whole
    // fingerprint (which re-checks the streams plus all counters).
    assert_eq!(
        cycle.events.len(),
        event.events.len(),
        "{label}: event counts diverge ({} vs {})",
        cycle.events.len(),
        event.events.len()
    );
    if let Some((i, (c, e))) = cycle
        .events
        .iter()
        .zip(&event.events)
        .enumerate()
        .find(|(_, (c, e))| c != e)
    {
        panic!("{label}: first probe divergence at event #{i}:\n  cycle: {c}\n  event: {e}");
    }
    assert_eq!(cycle, event, "{label}: kernels diverged");
}

#[test]
fn baseline_matches() {
    let plan = FaultPlan::none();
    assert_kernels_agree("baseline", &SystemConfig::baseline_32(), &plan);
}

#[test]
fn scheme1_matches() {
    let plan = FaultPlan::none();
    assert_kernels_agree("s1", &SystemConfig::baseline_32().with_scheme1(), &plan);
}

#[test]
fn scheme2_matches() {
    let plan = FaultPlan::none();
    assert_kernels_agree("s2", &SystemConfig::baseline_32().with_scheme2(), &plan);
}

#[test]
fn both_schemes_match() {
    let plan = FaultPlan::none();
    assert_kernels_agree(
        "both",
        &SystemConfig::baseline_32().with_both_schemes(),
        &plan,
    );
}

/// The registry path: policies selected by name rather than derived from
/// the scheme flags (the other half of the policy plumbing).
#[test]
fn named_policies_match() {
    let mut cfg = SystemConfig::baseline_32();
    cfg.policy.request = Some("oldest-first".to_string());
    cfg.policy.response = Some("static".to_string());
    let plan = FaultPlan::none();
    assert_kernels_agree("named-policies", &cfg, &plan);
}

/// `warm_up` rebuilds the idleness monitors with a stale (cycle-0) sample
/// schedule, so the event kernel's bulk replay must *catch up* at the
/// current cycle exactly as per-cycle stepping does. Scheme 1 reads the
/// monitors for its threshold broadcasts, so a drifted sample schedule
/// changes priorities — and with them the probe streams this cell compares.
#[test]
fn warmed_up_scheme1_matches() {
    let plan = FaultPlan::none();
    assert_kernels_agree_warmed(
        "warmed-s1",
        &SystemConfig::baseline_32().with_scheme1(),
        &plan,
        1_500,
    );
}

/// Faults force the kernel through its busy-now paths: an offline DRAM bank
/// window defers service (controller wake-ups), and a windowed router stall
/// wedges flits in place (occupancy holds the network busy while nothing
/// moves). Watchdog polls and timeout scans must still land on the exact
/// cycles the per-cycle kernel lands on.
#[test]
fn faulted_run_matches() {
    let mut cfg = SystemConfig::baseline_32();
    cfg.watchdog.deadlock_cycles = 2_000;
    let mut plan = FaultPlan::none();
    plan.banks.push(BankFault {
        controller: 0,
        bank: None,
        kind: BankFaultKind::Offline,
        window: CycleWindow {
            start: 3_000,
            end: 6_000,
        },
    });
    for node in [0usize, 31] {
        plan.router_stalls.push(RouterStall {
            node,
            window: CycleWindow {
                start: 4_000,
                end: 7_000,
            },
        });
    }
    assert_kernels_agree("faulted", &cfg, &plan);
}

// ---------------------------------------------------------------------------
// Off-mesh fabrics at 16x16 (256 cores, workload-2 cycled per core): every
// topology's wake-up contract must hold under the event kernel — wraparound
// links and dateline VCs (torus), tiles sharing routers (cmesh), and the
// 9-port express channels.
// ---------------------------------------------------------------------------

fn topo_config(spec: &str) -> SystemConfig {
    let mut cfg = SystemConfig::baseline_256().with_both_schemes();
    TopologyOverride::parse(spec)
        .unwrap_or_else(|e| panic!("{spec}: {e}"))
        .apply(&mut cfg);
    cfg
}

#[test]
fn torus_16x16_matches() {
    let plan = FaultPlan::none();
    assert_kernels_agree_for(
        "torus-16x16",
        &topo_config("torus"),
        &plan,
        0,
        TOPO_RUN_CYCLES,
    );
}

#[test]
fn cmesh_16x16_matches() {
    let plan = FaultPlan::none();
    assert_kernels_agree_for(
        "cmesh-16x16",
        &topo_config("cmesh:c=4"),
        &plan,
        0,
        TOPO_RUN_CYCLES,
    );
}

#[test]
fn express_16x16_matches() {
    let plan = FaultPlan::none();
    assert_kernels_agree_for(
        "express-16x16",
        &topo_config("express:skip=2"),
        &plan,
        0,
        TOPO_RUN_CYCLES,
    );
}
