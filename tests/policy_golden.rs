//! The policy registry's behavior-preservation contract.
//!
//! The prioritization-policy layer is a refactor of the paper schemes, not
//! a reinterpretation: resolving `scheme1`/`scheme2` by name through the
//! registry must reproduce the hardwired scheme-flag runs *bit for bit*,
//! and the `baseline` policy must be indistinguishable from running with
//! the schemes disabled, whatever the flags say. These tests pin both
//! directions, run the non-paper policies (`oldest-first`, `static`)
//! end-to-end, and check that attaching probes observes traffic without
//! perturbing it.

use noclat::{
    run_mix, CountingProbe, PolicyOverride, RunLengths, Simulation, System, SystemConfig,
};
use noclat_sim::config::StarvationPolicy;
use noclat_workloads::workload;

const WORKLOAD: usize = 2;

/// Same window as the golden suite: long enough for Scheme-1's 10k-cycle
/// update period to elapse, so the equivalence covers threshold traffic.
fn lengths() -> RunLengths {
    RunLengths {
        warmup: 300,
        measure: 12_000,
    }
}

/// A bit-exact run fingerprint: per-app off-chip counts and IPC bits.
fn fingerprint(cfg: &SystemConfig, lengths: RunLengths) -> Vec<u64> {
    let r = run_mix(cfg, &workload(WORKLOAD).apps(), lengths);
    let mut fp = Vec::with_capacity(2 * r.per_app.len());
    for a in &r.per_app {
        fp.push(a.offchip);
        fp.push(a.ipc.to_bits());
    }
    fp
}

fn build_system(cfg: SystemConfig, apps: &[noclat_workloads::SpecApp]) -> System {
    Simulation::builder(cfg)
        .workload(apps)
        .build()
        .unwrap()
        .into_system()
}

fn with_policy(mut cfg: SystemConfig, request: &str, response: &str) -> SystemConfig {
    cfg.policy.request = Some(request.to_string());
    cfg.policy.response = Some(response.to_string());
    cfg
}

/// The tentpole's acceptance bar: for every scheme combination, resolving
/// the paper schemes by registry name (flags off) is byte-identical to the
/// hardwired scheme-flag run.
#[test]
fn registry_names_reproduce_hardwired_schemes() {
    let base = SystemConfig::baseline_32();
    let combos: [(&str, SystemConfig, SystemConfig); 4] = [
        (
            "baseline",
            base.clone(),
            with_policy(base.clone(), "baseline", "baseline"),
        ),
        (
            "s1",
            base.clone().with_scheme1(),
            with_policy(base.clone(), "baseline", "scheme1"),
        ),
        (
            "s2",
            base.clone().with_scheme2(),
            with_policy(base.clone(), "scheme2", "baseline"),
        ),
        (
            "both",
            base.clone().with_both_schemes(),
            with_policy(base, "scheme2", "scheme1"),
        ),
    ];
    for (name, flags, named) in combos {
        assert_eq!(
            fingerprint(&flags, lengths()),
            fingerprint(&named, lengths()),
            "{name}: registry-resolved policies diverged from the scheme flags"
        );
    }
}

/// Satellite property: the `baseline` policy is schemes-disabled, across
/// seeds and regardless of the scheme flags (explicit names beat flags, so
/// all four golden flag combinations must collapse onto the same run).
#[test]
fn baseline_policy_equals_schemes_disabled() {
    let short = RunLengths {
        warmup: 200,
        measure: 6_000,
    };
    for seed_bump in [0u64, 1] {
        let mut reference = SystemConfig::baseline_32();
        reference.seed ^= seed_bump;
        let want = fingerprint(&reference, short);
        let flag_combos: [SystemConfig; 4] = [
            reference.clone(),
            reference.clone().with_scheme1(),
            reference.clone().with_scheme2(),
            reference.clone().with_both_schemes(),
        ];
        for (k, flags) in flag_combos.into_iter().enumerate() {
            let cfg = with_policy(flags, "baseline", "baseline");
            assert_eq!(
                fingerprint(&cfg, short),
                want,
                "combo {k} (seed bump {seed_bump}): baseline policy must \
                 neutralize the scheme flags"
            );
        }
    }
}

/// The non-paper registry entries run end-to-end, and the `--policy` spec
/// grammar drives all three decision layers.
#[test]
fn oldest_first_and_static_policies_run_end_to_end() {
    let short = RunLengths {
        warmup: 200,
        measure: 4_000,
    };
    for spec in [
        "req=oldest-first,resp=oldest-first",
        "req=static,resp=static",
        "req=oldest-first,resp=scheme1,arb=oldest-first",
        "resp=static,arb=static",
    ] {
        let ov = PolicyOverride::parse(spec).expect("spec parses");
        let mut cfg = SystemConfig::baseline_32();
        ov.apply(&mut cfg);
        cfg.validate().expect("override yields a valid config");
        let fp = fingerprint(&cfg, short);
        let offchip: u64 = fp.iter().step_by(2).sum();
        assert!(offchip > 0, "{spec}: the run must retire off-chip accesses");
    }
    // The arbitration slot reaches NocConfig.
    let ov = PolicyOverride::parse("arb=batching:64").expect("batching arbitration parses");
    let mut cfg = SystemConfig::baseline_32();
    ov.apply(&mut cfg);
    assert_eq!(
        cfg.noc.starvation,
        StarvationPolicy::Batching { interval: 64 }
    );
}

/// The resolved policy objects are visible on the built system (and in its
/// Debug rendering), for flags-derived and explicit names alike.
#[test]
fn system_reports_resolved_policy_names() {
    let apps = workload(WORKLOAD).apps();
    let sys = build_system(SystemConfig::baseline_32().with_both_schemes(), &apps);
    assert_eq!(sys.request_policy_name(), "scheme2");
    assert_eq!(sys.response_policy_name(), "scheme1");
    let dbg = format!("{sys:?}");
    assert!(dbg.contains("scheme2") && dbg.contains("scheme1"), "{dbg}");

    let cfg = with_policy(SystemConfig::baseline_32(), "oldest-first", "static");
    let sys = build_system(cfg, &apps);
    assert_eq!(sys.request_policy_name(), "oldest-first");
    assert_eq!(sys.response_policy_name(), "static");
}

/// Probes observe every layer without changing the simulation.
#[test]
fn counting_probe_observes_without_perturbing() {
    let cfg = SystemConfig::baseline_32().with_both_schemes();
    let apps = workload(WORKLOAD).apps();
    let mut plain = build_system(cfg.clone(), &apps);
    let mut probed = build_system(cfg, &apps);
    let (probe, counters) = CountingProbe::new();
    probed.attach_probe(Box::new(probe));

    let cycles = 6_000;
    plain.run(cycles);
    probed.run(cycles);

    let [hops, high_hops, mc_dequeues, _expedited, retirements, offchip] = counters.snapshot();
    assert!(hops > 0, "router hops must be observed");
    assert!(
        high_hops > 0,
        "with both schemes on, some flits travel at high priority"
    );
    assert!(mc_dequeues > 0, "controller dequeues must be observed");
    assert!(retirements > 0, "retirements must be observed");
    assert!(offchip > 0, "off-chip retirements must be observed");

    // Observation is free: the probed system walked the same trajectory.
    assert_eq!(plain.now(), probed.now());
    assert_eq!(plain.txns_in_flight(), probed.txns_in_flight());
    let (a, b) = (plain.network_stats(), probed.network_stats());
    assert_eq!(a.packets_injected.get(), b.packets_injected.get());
    assert_eq!(a.packets_delivered.get(), b.packets_delivered.get());
    for core in 0..4 {
        assert_eq!(
            plain.tracker().app(core).total.count(),
            probed.tracker().app(core).total.count(),
            "core {core} latency samples diverged under observation"
        );
    }
}
