//! Property-style integration tests of the two schemes' externally
//! observable guarantees, run through the public API.

use noclat_repro::workloads::workload;
use noclat_repro::{run_mix, RunLengths, SystemConfig};
use proptest::prelude::*;

fn quick() -> RunLengths {
    RunLengths {
        warmup: 3_000,
        measure: 20_000,
    }
}

#[test]
fn scheme1_expedites_only_a_minority() {
    // The threshold is above the average by construction, so only the tail
    // may be marked; a majority-marked network would defeat prioritization
    // (Section 4.2's threshold discussion).
    let apps = workload(8).apps();
    let r = run_mix(&SystemConfig::baseline_32().with_scheme1(), &apps, quick());
    let hp = r.system.router_counters().high_priority_traversed as f64;
    let total = r.system.router_counters().flits_traversed as f64;
    assert!(
        hp / total < 0.5,
        "more than half of the flits are high priority ({:.1}%)",
        hp / total * 100.0
    );
}

#[test]
fn combined_schemes_do_not_collapse_throughput() {
    // Prioritization redistributes latency; it must never wreck aggregate
    // throughput (the paper's worst per-workload case is ~-1%). Allow a
    // margin for measurement noise on the short test window.
    let apps = workload(2).apps();
    let base = run_mix(&SystemConfig::baseline_32(), &apps, quick());
    let both = run_mix(
        &SystemConfig::baseline_32().with_both_schemes(),
        &apps,
        quick(),
    );
    let sum_base: f64 = base.per_app.iter().map(|a| a.ipc).sum();
    let sum_both: f64 = both.per_app.iter().map(|a| a.ipc).sum();
    assert!(
        sum_both > sum_base * 0.95,
        "aggregate IPC collapsed: {sum_base:.2} -> {sum_both:.2}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any valid scheme parameterization must produce a functioning system:
    /// all cores progress and all injected packets eventually deliver.
    #[test]
    fn arbitrary_scheme_parameters_are_safe(
        factor in 0.5f64..2.5,
        window in 50u64..800,
        idle_th in 1u32..4,
        guard in prop::sample::select(vec![0u32, 200, 1000, 4000]),
    ) {
        let mut cfg = SystemConfig::baseline_32().with_both_schemes();
        cfg.scheme1.threshold_factor = factor;
        cfg.scheme2.history_window = window;
        cfg.scheme2.idle_threshold = idle_th;
        cfg.noc.starvation_age_guard = guard;
        let apps = workload(1).apps();
        let r = run_mix(&cfg, &apps, RunLengths { warmup: 1_000, measure: 8_000 });
        for a in &r.per_app {
            prop_assert!(a.ipc > 0.0, "core {} starved with {:?}", a.core, cfg.scheme1);
        }
        // No unbounded packet leakage.
        prop_assert!(r.system.txns_in_flight() <= 32 * cfg.cpu.lsq_size);
    }
}
