//! Property-style integration tests of the two schemes' externally
//! observable guarantees, run through the public API — plus the robustness
//! guarantees of the fault-injection/recovery layer.

use noclat_repro::sim::check::{self, pick, range_f64, range_u64};
use noclat_repro::workloads::workload;
use noclat_repro::{run_mix, FaultPlan, RunLengths, SystemConfig};

fn quick() -> RunLengths {
    RunLengths {
        warmup: 3_000,
        measure: 20_000,
    }
}

#[test]
fn scheme1_expedites_only_a_minority() {
    // The threshold is above the average by construction, so only the tail
    // may be marked; a majority-marked network would defeat prioritization
    // (Section 4.2's threshold discussion).
    let apps = workload(8).apps();
    let r = run_mix(&SystemConfig::baseline_32().with_scheme1(), &apps, quick());
    let hp = r.system.router_counters().high_priority_traversed as f64;
    let total = r.system.router_counters().flits_traversed as f64;
    assert!(
        hp / total < 0.5,
        "more than half of the flits are high priority ({:.1}%)",
        hp / total * 100.0
    );
}

#[test]
fn combined_schemes_do_not_collapse_throughput() {
    // Prioritization redistributes latency; it must never wreck aggregate
    // throughput (the paper's worst per-workload case is ~-1%). Allow a
    // margin for measurement noise on the short test window.
    let apps = workload(2).apps();
    let base = run_mix(&SystemConfig::baseline_32(), &apps, quick());
    let both = run_mix(
        &SystemConfig::baseline_32().with_both_schemes(),
        &apps,
        quick(),
    );
    let sum_base: f64 = base.per_app.iter().map(|a| a.ipc).sum();
    let sum_both: f64 = both.per_app.iter().map(|a| a.ipc).sum();
    assert!(
        sum_both > sum_base * 0.95,
        "aggregate IPC collapsed: {sum_base:.2} -> {sum_both:.2}"
    );
}

/// Any valid scheme parameterization must produce a functioning system:
/// all cores progress and all injected packets eventually deliver.
#[test]
fn arbitrary_scheme_parameters_are_safe() {
    check::cases(8, |rng| {
        let mut cfg = SystemConfig::baseline_32().with_both_schemes();
        cfg.scheme1.threshold_factor = range_f64(rng, 0.5, 2.5);
        cfg.scheme2.history_window = range_u64(rng, 50, 800);
        cfg.scheme2.idle_threshold = range_u64(rng, 1, 4) as u32;
        cfg.noc.starvation_age_guard = pick(rng, &[0u32, 200, 1000, 4000]);
        let apps = workload(1).apps();
        let r = run_mix(
            &cfg,
            &apps,
            RunLengths {
                warmup: 1_000,
                measure: 8_000,
            },
        );
        for a in &r.per_app {
            assert!(
                a.ipc > 0.0,
                "core {} starved with {:?}",
                a.core,
                cfg.scheme1
            );
        }
        // No unbounded packet leakage.
        assert!(r.system.txns_in_flight() <= 32 * cfg.cpu.lsq_size);
    });
}

/// With fault injection disabled, the liveness watchdog and conservation
/// audit must stay silent: every run is clean by construction, so any
/// violation would be a false positive.
#[test]
fn fault_free_runs_report_zero_violations() {
    for cfg in [
        SystemConfig::baseline_32(),
        SystemConfig::baseline_32().with_both_schemes(),
    ] {
        let r = run_mix(&cfg, &workload(2).apps(), quick());
        let rb = r.system.robustness();
        assert_eq!(rb.violations, 0, "fault-free run raised violations");
        assert_eq!(rb.packets_dropped, 0);
        assert_eq!(rb.lost_txns, 0);
        assert_eq!(rb.retries, 0);
        assert!(r.system.violations().is_empty());
    }
}

/// Under random link flit drops, the recovery layer (detection + bounded
/// re-injection) must retire every transaction: drops are observed (the
/// fault plan really fires) but nothing is permanently lost.
#[test]
fn drop_faults_with_recovery_retire_all_transactions() {
    check::cases(4, |rng| {
        let rate = pick(rng, &[1e-4, 5e-4, 1e-3]);
        let mut cfg = SystemConfig::baseline_32().with_both_schemes();
        cfg.faults = FaultPlan::uniform_drop(rng.next_u64(), rate);
        let r = run_mix(&cfg, &workload(2).apps(), quick());
        let rb = r.system.robustness();
        assert!(
            rb.packets_dropped > 0,
            "drop plan at rate {rate} never fired"
        );
        assert!(rb.retries > 0, "drops must trigger re-injection");
        assert_eq!(
            rb.lost_txns, 0,
            "recovery lost {} transactions at drop rate {rate}",
            rb.lost_txns
        );
    });
}
