//! Golden-result regression suite: pinned seed-run metrics for the
//! `baseline_32` system on workload-2 under all four scheme combinations.
//!
//! The simulator is deterministic, so any drift in these numbers means a
//! behavioural change in the model — intended changes must regenerate the
//! table (run with `NOCLAT_REGEN_GOLDEN=1 cargo test --test golden_results
//! -- --nocapture regen` and paste the printed block), unintended ones are
//! regressions. Integer counts are compared exactly; floating-point
//! metrics use a 0.5% relative band so the suite survives benign
//! re-orderings of IEEE-identical arithmetic, while still failing loudly
//! when a scheme constant (threshold factor, history window, …) is
//! perturbed — the perturbation tests below prove the bands are tight
//! enough to catch exactly that.

use std::collections::HashMap;
use std::sync::OnceLock;

use noclat::{alone_ipc, run_mix, weighted_speedup_of, RunLengths, SystemConfig};
use noclat_sim::stats::Histogram;
use noclat_workloads::{workload, SpecApp};

const WORKLOAD: usize = 2;
const RTOL: f64 = 5e-3;
const PINNED_CORES: usize = 4;

/// Long enough that Scheme-1's default 10k-cycle threshold update period
/// elapses during measurement (shorter windows never activate it, and the
/// suite must pin the schemes actually doing something).
fn lengths() -> RunLengths {
    RunLengths {
        warmup: 300,
        measure: 12_000,
    }
}

fn config_for(scheme: &str) -> SystemConfig {
    let base = SystemConfig::baseline_32();
    match scheme {
        "baseline" => base,
        "s1" => base.with_scheme1(),
        "s2" => base.with_scheme2(),
        "both" => base.with_both_schemes(),
        other => unreachable!("unknown scheme {other}"),
    }
}

/// The metrics one golden row pins.
#[derive(Debug, Clone, PartialEq)]
struct Metrics {
    scheme: &'static str,
    /// Total completed off-chip accesses (exact).
    offchip: u64,
    /// Per-core off-chip accesses for the first few cores (exact).
    core_offchip: [u64; PINNED_CORES],
    /// Per-core IPC for the first few cores (0.5% band).
    core_ipc: [f64; PINNED_CORES],
    /// Sum of per-app IPCs (0.5% band).
    ipc_sum: f64,
    /// Mean of the merged round-trip latency histogram (0.5% band).
    mean_latency: f64,
    /// 95th percentile of the merged histogram (exact bin center).
    p95_latency: u64,
    /// Weighted speedup vs the alone runs (0.5% band).
    weighted_speedup: f64,
}

/// Alone-run IPC denominators, computed once per test process (every test
/// needs the same table and the runs are the expensive part).
fn alone_table() -> &'static HashMap<SpecApp, f64> {
    static TABLE: OnceLock<HashMap<SpecApp, f64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let cfg = SystemConfig::baseline_32();
        let mut distinct: Vec<SpecApp> = Vec::new();
        for app in workload(WORKLOAD).apps() {
            if !distinct.contains(&app) {
                distinct.push(app);
            }
        }
        distinct
            .into_iter()
            .map(|app| (app, alone_ipc(&cfg, app, lengths())))
            .collect()
    })
}

fn measure(scheme: &'static str, alone: &HashMap<SpecApp, f64>, cfg: &SystemConfig) -> Metrics {
    let r = run_mix(cfg, &workload(WORKLOAD).apps(), lengths());
    let mut merged = Histogram::new(25, 4000);
    for c in 0..r.per_app.len() {
        merged.merge(&r.system.tracker().app(c).total);
    }
    let mut core_offchip = [0u64; PINNED_CORES];
    let mut core_ipc = [0f64; PINNED_CORES];
    for c in 0..PINNED_CORES {
        core_offchip[c] = r.per_app[c].offchip;
        core_ipc[c] = r.per_app[c].ipc;
    }
    Metrics {
        scheme,
        offchip: r.per_app.iter().map(|a| a.offchip).sum(),
        core_offchip,
        core_ipc,
        ipc_sum: r.per_app.iter().map(|a| a.ipc).sum(),
        mean_latency: merged.mean(),
        p95_latency: merged.percentile(0.95),
        weighted_speedup: weighted_speedup_of(&r, alone),
    }
}

fn assert_close(what: &str, scheme: &str, got: f64, want: f64) {
    let rel = if want == 0.0 {
        got.abs()
    } else {
        ((got - want) / want).abs()
    };
    assert!(
        rel <= RTOL,
        "{scheme}/{what}: got {got}, golden {want} (rel err {rel:.2e} > {RTOL:.0e})"
    );
}

fn check(golden: &Metrics, alone: &HashMap<SpecApp, f64>) {
    let m = measure(golden.scheme, alone, &config_for(golden.scheme));
    assert_eq!(
        m.offchip, golden.offchip,
        "{}/offchip: got {}, golden {}",
        golden.scheme, m.offchip, golden.offchip
    );
    assert_eq!(
        m.core_offchip, golden.core_offchip,
        "{}/core_offchip drifted",
        golden.scheme
    );
    for c in 0..PINNED_CORES {
        assert_close(
            &format!("core{c}_ipc"),
            golden.scheme,
            m.core_ipc[c],
            golden.core_ipc[c],
        );
    }
    assert_close("ipc_sum", golden.scheme, m.ipc_sum, golden.ipc_sum);
    assert_close(
        "mean_latency",
        golden.scheme,
        m.mean_latency,
        golden.mean_latency,
    );
    assert_eq!(
        m.p95_latency, golden.p95_latency,
        "{}/p95_latency: got {}, golden {}",
        golden.scheme, m.p95_latency, golden.p95_latency
    );
    assert_close(
        "weighted_speedup",
        golden.scheme,
        m.weighted_speedup,
        golden.weighted_speedup,
    );
}

// ---------------------------------------------------------------------------
// The golden table (regenerate with NOCLAT_REGEN_GOLDEN=1, see module doc).
// ---------------------------------------------------------------------------

const GOLDEN: [Metrics; 4] = [
    Metrics {
        scheme: "baseline",
        offchip: 1539,
        core_offchip: [100, 91, 213, 234],
        core_ipc: [0.4195, 0.3915, 0.3710833333333333, 0.32108333333333333],
        ipc_sum: 15.779333333333334,
        mean_latency: 457.140350877193,
        p95_latency: 700,
        weighted_speedup: 16.905833508546884,
    },
    Metrics {
        scheme: "s1",
        offchip: 1534,
        core_offchip: [100, 91, 212, 234],
        core_ipc: [0.4195, 0.39166666666666666, 0.3695, 0.32108333333333333],
        ipc_sum: 15.76366666666667,
        mean_latency: 453.6681877444589,
        p95_latency: 675,
        weighted_speedup: 16.884056605601163,
    },
    Metrics {
        scheme: "s2",
        offchip: 1584,
        core_offchip: [101, 91, 219, 235],
        core_ipc: [0.4105, 0.39625, 0.3829166666666667, 0.32066666666666666],
        ipc_sum: 15.87425,
        mean_latency: 424.35290404040404,
        p95_latency: 600,
        weighted_speedup: 17.031022929381365,
    },
    Metrics {
        scheme: "both",
        offchip: 1595,
        core_offchip: [96, 93, 223, 236],
        core_ipc: [
            0.4038333333333333,
            0.3963333333333333,
            0.3829166666666667,
            0.3294166666666667,
        ],
        ipc_sum: 15.892999999999999,
        mean_latency: 423.59937304075237,
        p95_latency: 600,
        weighted_speedup: 17.052545958513512,
    },
];

/// Prints the golden table in source form when `NOCLAT_REGEN_GOLDEN=1`
/// (otherwise a no-op), so intended model changes can re-pin it.
#[test]
fn regen_golden_table() {
    if std::env::var("NOCLAT_REGEN_GOLDEN").as_deref() != Ok("1") {
        return;
    }
    let alone = alone_table();
    println!("const GOLDEN: [Metrics; 4] = [");
    for scheme in ["baseline", "s1", "s2", "both"] {
        let m = measure(scheme, alone, &config_for(scheme));
        println!("    Metrics {{");
        println!("        scheme: \"{}\",", m.scheme);
        println!("        offchip: {},", m.offchip);
        println!("        core_offchip: {:?},", m.core_offchip);
        println!("        core_ipc: {:?},", m.core_ipc);
        println!("        ipc_sum: {:?},", m.ipc_sum);
        println!("        mean_latency: {:?},", m.mean_latency);
        println!("        p95_latency: {},", m.p95_latency);
        println!("        weighted_speedup: {:?},", m.weighted_speedup);
        println!("    }},");
    }
    println!("];");
}

#[test]
fn golden_baseline() {
    check(&GOLDEN[0], alone_table());
}

#[test]
fn golden_scheme1() {
    check(&GOLDEN[1], alone_table());
}

#[test]
fn golden_scheme2() {
    check(&GOLDEN[2], alone_table());
}

#[test]
fn golden_both_schemes() {
    check(&GOLDEN[3], alone_table());
}

/// The suite's reason to exist: a perturbed scheme constant must push the
/// measured metrics out of the golden bands. Here Scheme-1's lateness
/// threshold is halved — the run must visibly diverge from the pinned
/// "both" row.
#[test]
fn perturbed_threshold_factor_escapes_the_bands() {
    let alone = alone_table();
    let mut cfg = config_for("both");
    cfg.scheme1.threshold_factor = 0.6;
    let m = measure("both", alone, &cfg);
    let golden = &GOLDEN[3];
    assert_ne!(
        m.offchip, golden.offchip,
        "halving the lateness threshold must change the trajectory"
    );
}

/// Same for Scheme-2: a different bank-history window must change the run.
#[test]
fn perturbed_history_window_escapes_the_bands() {
    let alone = alone_table();
    let mut cfg = config_for("both");
    cfg.scheme2.history_window *= 4;
    let m = measure("both", alone, &cfg);
    let golden = &GOLDEN[3];
    assert_ne!(
        m.offchip, golden.offchip,
        "a 4x bank-history window must change the trajectory"
    );
}

// ---------------------------------------------------------------------------
// Off-mesh golden rows: the 16x16 torus (256 cores, dateline VCs) under all
// four scheme combos. No weighted speedup here — 256 alone runs would
// dominate the suite's budget; the pinned counts and latency shape already
// lock the fabric's trajectory.
// ---------------------------------------------------------------------------

use noclat::TopologyOverride;

/// Shorter than the mesh window: a 256-core cycle is ~8x the work, and the
/// torus rows pin network behaviour (wraparound routing, dateline VC
/// allocation), which saturates well before Scheme-1's threshold updates.
fn torus_lengths() -> RunLengths {
    RunLengths {
        warmup: 200,
        measure: 4_000,
    }
}

fn torus_config_for(scheme: &str) -> SystemConfig {
    let mut cfg = match scheme {
        "baseline" => SystemConfig::baseline_256(),
        "s1" => SystemConfig::baseline_256().with_scheme1(),
        "s2" => SystemConfig::baseline_256().with_scheme2(),
        "both" => SystemConfig::baseline_256().with_both_schemes(),
        other => unreachable!("unknown scheme {other}"),
    };
    TopologyOverride::parse("torus")
        .expect("valid spec")
        .apply(&mut cfg);
    cfg
}

/// The metrics one torus golden row pins.
#[derive(Debug, Clone, PartialEq)]
struct TorusMetrics {
    scheme: &'static str,
    /// Total completed off-chip accesses (exact).
    offchip: u64,
    /// Per-core off-chip accesses for the first few cores (exact).
    core_offchip: [u64; PINNED_CORES],
    /// Sum of per-app IPCs (0.5% band).
    ipc_sum: f64,
    /// Mean of the merged round-trip latency histogram (0.5% band).
    mean_latency: f64,
    /// 95th percentile of the merged histogram (exact bin center).
    p95_latency: u64,
}

fn torus_measure(scheme: &'static str, cfg: &SystemConfig) -> TorusMetrics {
    let apps = workload(WORKLOAD).apps_for(cfg.num_cores());
    let r = run_mix(cfg, &apps, torus_lengths());
    let mut merged = Histogram::new(25, 4000);
    for c in 0..r.per_app.len() {
        merged.merge(&r.system.tracker().app(c).total);
    }
    let mut core_offchip = [0u64; PINNED_CORES];
    for (c, slot) in core_offchip.iter_mut().enumerate() {
        *slot = r.per_app[c].offchip;
    }
    TorusMetrics {
        scheme,
        offchip: r.per_app.iter().map(|a| a.offchip).sum(),
        core_offchip,
        ipc_sum: r.per_app.iter().map(|a| a.ipc).sum(),
        mean_latency: merged.mean(),
        p95_latency: merged.percentile(0.95),
    }
}

fn torus_check(golden: &TorusMetrics) {
    let m = torus_measure(golden.scheme, &torus_config_for(golden.scheme));
    assert_eq!(
        m.offchip, golden.offchip,
        "torus/{}/offchip: got {}, golden {}",
        golden.scheme, m.offchip, golden.offchip
    );
    assert_eq!(
        m.core_offchip, golden.core_offchip,
        "torus/{}/core_offchip drifted",
        golden.scheme
    );
    assert_close("ipc_sum", golden.scheme, m.ipc_sum, golden.ipc_sum);
    assert_close(
        "mean_latency",
        golden.scheme,
        m.mean_latency,
        golden.mean_latency,
    );
    assert_eq!(
        m.p95_latency, golden.p95_latency,
        "torus/{}/p95_latency: got {}, golden {}",
        golden.scheme, m.p95_latency, golden.p95_latency
    );
}

// Within this window Scheme-1 is inert (its first 10k-cycle threshold
// update never arrives), so the s1 row equals baseline and the both row
// equals s2 — the rows still pin that *remaining* equality.
const TORUS_GOLDEN: [TorusMetrics; 4] = [
    TorusMetrics {
        scheme: "baseline",
        offchip: 742,
        core_offchip: [9, 7, 4, 19],
        ipc_sum: 55.616,
        mean_latency: 2053.9029649595686,
        p95_latency: 3250,
    },
    TorusMetrics {
        scheme: "s1",
        offchip: 742,
        core_offchip: [9, 7, 4, 19],
        ipc_sum: 55.616,
        mean_latency: 2053.9029649595686,
        p95_latency: 3250,
    },
    TorusMetrics {
        scheme: "s2",
        offchip: 787,
        core_offchip: [10, 8, 3, 19],
        ipc_sum: 59.274250000000016,
        mean_latency: 1872.4269377382466,
        p95_latency: 3100,
    },
    TorusMetrics {
        scheme: "both",
        offchip: 787,
        core_offchip: [10, 8, 3, 19],
        ipc_sum: 59.274250000000016,
        mean_latency: 1872.4269377382466,
        p95_latency: 3100,
    },
];

/// Prints the torus golden table in source form when `NOCLAT_REGEN_GOLDEN=1`
/// (otherwise a no-op), so intended model changes can re-pin it.
#[test]
fn regen_torus_golden_table() {
    if std::env::var("NOCLAT_REGEN_GOLDEN").as_deref() != Ok("1") {
        return;
    }
    println!("const TORUS_GOLDEN: [TorusMetrics; 4] = [");
    for scheme in ["baseline", "s1", "s2", "both"] {
        let m = torus_measure(scheme, &torus_config_for(scheme));
        println!("    TorusMetrics {{");
        println!("        scheme: \"{}\",", m.scheme);
        println!("        offchip: {},", m.offchip);
        println!("        core_offchip: {:?},", m.core_offchip);
        println!("        ipc_sum: {:?},", m.ipc_sum);
        println!("        mean_latency: {:?},", m.mean_latency);
        println!("        p95_latency: {},", m.p95_latency);
        println!("    }},");
    }
    println!("];");
}

#[test]
fn torus_golden_baseline() {
    torus_check(&TORUS_GOLDEN[0]);
}

#[test]
fn torus_golden_scheme1() {
    torus_check(&TORUS_GOLDEN[1]);
}

#[test]
fn torus_golden_scheme2() {
    torus_check(&TORUS_GOLDEN[2]);
}

#[test]
fn torus_golden_both_schemes() {
    torus_check(&TORUS_GOLDEN[3]);
}

/// The torus bands must catch *fabric-level* drift, not just scheme-constant
/// drift: doubling the link latency changes every wraparound hop and must
/// push the run out of the pinned trajectory.
#[test]
fn perturbed_link_latency_escapes_the_torus_bands() {
    let mut cfg = torus_config_for("both");
    cfg.noc.link_latency = 2;
    let m = torus_measure("both", &cfg);
    let golden = &TORUS_GOLDEN[3];
    assert_ne!(
        m.offchip, golden.offchip,
        "doubling link latency must change the torus trajectory"
    );
}
