//! Analytic-model validation: the closed-form estimator of
//! `noclat-analytic` must land inside a pinned relative-error band of the
//! cycle simulator's golden mean latencies (`tests/golden_results.rs`) for
//! every scheme combination on both golden fabrics.
//!
//! The golden constants are repeated here as locals (the golden suite pins
//! them against the simulator; this suite pins the *model* against them) —
//! if `golden_results.rs` is regenerated, re-paste the latencies below.
//!
//! Two bands are pinned:
//!   * per-cell: each estimate within `CELL_BAND` of its golden latency;
//!   * mean: the average |error| over all eight cells within `MEAN_BAND`.
//!
//! The perturbation test proves the bands have teeth: breaking a single
//! model coefficient must push the suite out of band.

use noclat::{RunLengths, SystemConfig, TopologyOverride};
use noclat_analytic::AnalyticModel;
use noclat_workloads::{workload, SpecApp};

const WORKLOAD: usize = 2;

/// Per-cell relative-error ceiling. The model currently sits under 3% on
/// every golden cell; 10% leaves calibration headroom while still failing
/// on any structural regression (a dropped leg, a broken coefficient).
const CELL_BAND: f64 = 0.10;

/// Mean |error| ceiling across all eight golden cells (the ISSUE's
/// acceptance band is 15%; the model currently delivers ~1.1%).
const MEAN_BAND: f64 = 0.15;

/// Golden mean latencies from `tests/golden_results.rs` (`GOLDEN` and
/// `TORUS_GOLDEN` tables), in scheme order baseline, s1, s2, both.
const MESH_GOLDEN: [f64; 4] = [
    457.140350877193,
    453.6681877444589,
    424.35290404040404,
    423.59937304075237,
];
const TORUS_GOLDEN: [f64; 4] = [
    2053.9029649595686,
    2053.9029649595686,
    1872.4269377382466,
    1872.4269377382466,
];

const SCHEMES: [&str; 4] = ["baseline", "s1", "s2", "both"];

fn with_scheme(base: &SystemConfig, scheme: &str) -> SystemConfig {
    match scheme {
        "baseline" => base.clone(),
        "s1" => base.clone().with_scheme1(),
        "s2" => base.clone().with_scheme2(),
        "both" => base.clone().with_both_schemes(),
        other => unreachable!("unknown scheme {other}"),
    }
}

fn mesh_family() -> (SystemConfig, Vec<SpecApp>, RunLengths) {
    (
        SystemConfig::baseline_32(),
        workload(WORKLOAD).apps(),
        RunLengths {
            warmup: 300,
            measure: 12_000,
        },
    )
}

fn torus_family() -> (SystemConfig, Vec<SpecApp>, RunLengths) {
    let mut cfg = SystemConfig::baseline_256();
    TopologyOverride::parse("torus")
        .expect("valid spec")
        .apply(&mut cfg);
    let apps = workload(WORKLOAD).apps_for(cfg.num_cores());
    (
        cfg,
        apps,
        RunLengths {
            warmup: 200,
            measure: 4_000,
        },
    )
}

fn estimate(base: &SystemConfig, apps: &[SpecApp], lengths: RunLengths, scheme: &str) -> f64 {
    AnalyticModel::new(&with_scheme(base, scheme), apps)
        .expect("golden configs validate")
        .with_lengths(lengths.warmup, lengths.measure)
        .evaluate()
        .mean_latency
}

/// Relative errors for all eight golden cells, mesh first then torus, in
/// scheme order.
fn all_errors() -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let (mesh, mesh_apps, mesh_len) = mesh_family();
    for (scheme, &golden) in SCHEMES.iter().zip(&MESH_GOLDEN) {
        let model = estimate(&mesh, &mesh_apps, mesh_len, scheme);
        out.push((format!("mesh/{scheme}"), (model - golden) / golden));
    }
    let (torus, torus_apps, torus_len) = torus_family();
    for (scheme, &golden) in SCHEMES.iter().zip(&TORUS_GOLDEN) {
        let model = estimate(&torus, &torus_apps, torus_len, scheme);
        out.push((format!("torus/{scheme}"), (model - golden) / golden));
    }
    out
}

#[test]
fn every_golden_cell_is_inside_the_per_cell_band() {
    for (label, err) in all_errors() {
        assert!(
            err.abs() <= CELL_BAND,
            "{label}: model off by {:+.2}% (band ±{:.0}%)",
            err * 100.0,
            CELL_BAND * 100.0
        );
    }
}

#[test]
fn mean_error_is_inside_the_acceptance_band() {
    let errors = all_errors();
    let mean = errors.iter().map(|(_, e)| e.abs()).sum::<f64>() / errors.len() as f64;
    assert!(
        mean <= MEAN_BAND,
        "mean |error| {:.2}% exceeds the {:.0}% acceptance band",
        mean * 100.0,
        MEAN_BAND * 100.0
    );
}

/// The torus goldens are window-limited, so the model must report them as
/// unstable within the pinned window while the mesh cells stay stable —
/// the estimator reproduces not just the numbers but the regime.
#[test]
fn model_reproduces_the_stability_regime_of_each_family() {
    let (mesh, mesh_apps, mesh_len) = mesh_family();
    let (torus, torus_apps, torus_len) = torus_family();
    for scheme in SCHEMES {
        let m = AnalyticModel::new(&with_scheme(&mesh, scheme), &mesh_apps)
            .unwrap()
            .with_lengths(mesh_len.warmup, mesh_len.measure)
            .evaluate();
        assert!(
            m.stability.is_stable(),
            "mesh/{scheme}: golden cell must be model-stable"
        );
        let t = AnalyticModel::new(&with_scheme(&torus, scheme), &torus_apps)
            .unwrap()
            .with_lengths(torus_len.warmup, torus_len.measure)
            .evaluate();
        assert!(
            !t.stability.is_stable(),
            "torus/{scheme}: golden cell is window-limited, model must agree"
        );
    }
}

/// The band's reason to exist: breaking one model coefficient must escape
/// it. Tripling `sat_fill` blows up every window-limited torus estimate,
/// dragging the mean error far out of the acceptance band.
#[test]
fn broken_coefficient_escapes_the_bands() {
    let (torus, torus_apps, torus_len) = torus_family();
    let mut bad = 0;
    let mut mean = 0.0;
    for (scheme, &golden) in SCHEMES.iter().zip(&TORUS_GOLDEN) {
        let model = AnalyticModel::new(&with_scheme(&torus, scheme), &torus_apps).unwrap();
        let mut coeffs = model.coefficients();
        coeffs.sat_fill *= 3.0;
        let est = model
            .with_coefficients(coeffs)
            .with_lengths(torus_len.warmup, torus_len.measure)
            .evaluate()
            .mean_latency;
        let err = ((est - golden) / golden).abs();
        mean += err / SCHEMES.len() as f64;
        if err > CELL_BAND {
            bad += 1;
        }
    }
    assert_eq!(
        bad,
        SCHEMES.len(),
        "a 3x sat_fill must push every torus cell out of the per-cell band"
    );
    assert!(
        mean > MEAN_BAND,
        "a 3x sat_fill must push the torus mean error ({:.1}%) out of the acceptance band",
        mean * 100.0
    );
}
